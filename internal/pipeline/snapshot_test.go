package pipeline

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/gen"
	"repro/internal/rtime"
)

// snapshotCorpus builds a set of distinct plans through the real
// pipeline — the same workload generator the equivalence corpus uses —
// so the round-trip tests exercise genuine assignments and schedules,
// not hand-made ones.
func snapshotCorpus(t *testing.T, n int) []*Plan {
	t.Helper()
	b := &Builder{}
	plans := make([]*Plan, 0, n)
	for i := 0; i < n; i++ {
		cfg := gen.Default(6 + i%5)
		cfg.Seed = int64(100 + i)
		w := gen.MustGenerate(cfg)
		p, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
		if err != nil {
			t.Fatalf("seed %d: %v", cfg.Seed, err)
		}
		plans = append(plans, p)
	}
	return plans
}

// planEqual compares the serializable content of two plans: key, every
// stage product, and the verdict. Graphs and platforms are compared via
// their fingerprint (already proven collision-relevant by the key).
func planEqual(t *testing.T, a, b *Plan) {
	t.Helper()
	if a.Key != b.Key {
		t.Fatalf("key mismatch:\n  %+v\n  %+v", a.Key, b.Key)
	}
	if Fingerprint(a.Graph, a.Platform) != Fingerprint(b.Graph, b.Platform) {
		t.Fatal("workload fingerprint changed across round-trip")
	}
	if !reflect.DeepEqual(a.Estimates, b.Estimates) {
		t.Fatal("estimates changed across round-trip")
	}
	if !reflect.DeepEqual(a.Assignment, b.Assignment) {
		t.Fatalf("assignment changed across round-trip:\n  %+v\n  %+v", a.Assignment, b.Assignment)
	}
	if !reflect.DeepEqual(a.Schedule, b.Schedule) {
		t.Fatalf("schedule changed across round-trip:\n  %+v\n  %+v", a.Schedule, b.Schedule)
	}
	if a.Verdict != b.Verdict {
		t.Fatalf("verdict changed across round-trip: %+v vs %+v", a.Verdict, b.Verdict)
	}
	if a.Quality != b.Quality {
		t.Fatalf("quality changed across round-trip: %v vs %v", a.Quality, b.Quality)
	}
}

// TestQualityRoundTrip pins the quality tag's wire behavior: full
// quality is omitted (old snapshots stay byte-identical), degraded
// survives the round-trip, and an unknown tag is refused rather than
// silently promoted to full.
func TestQualityRoundTrip(t *testing.T) {
	b := &Builder{Quality: QualityDegraded}
	cfg := gen.Default(4)
	cfg.Seed = 41
	w := gen.MustGenerate(cfg)
	p, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}
	if p.Quality != QualityDegraded {
		t.Fatalf("builder quality not stamped: %v", p.Quality)
	}
	pj := EncodePlan(p)
	if pj.Quality != "degraded" {
		t.Fatalf("encoded quality = %q, want degraded", pj.Quality)
	}
	got, err := DecodePlan(pj)
	if err != nil {
		t.Fatal(err)
	}
	planEqual(t, p, got)

	full, err := (&Builder{}).Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}
	if enc := EncodePlan(full); enc.Quality != "" {
		t.Fatalf("full quality should encode as empty, got %q", enc.Quality)
	}

	pj.Quality = "shiny"
	if _, err := DecodePlan(pj); err == nil {
		t.Fatal("unknown quality tag should be refused")
	}
}

// TestPlanRoundTrip checks EncodePlan → JSON → DecodePlan is lossless
// and byte-stable: re-encoding the decoded plan reproduces the exact
// bytes, so a plan can transit snapshots and warm fills any number of
// times without drift.
func TestPlanRoundTrip(t *testing.T) {
	for i, p := range snapshotCorpus(t, 8) {
		raw, err := json.Marshal(EncodePlan(p))
		if err != nil {
			t.Fatal(err)
		}
		var pj PlanJSON
		if err := json.Unmarshal(raw, &pj); err != nil {
			t.Fatal(err)
		}
		got, err := DecodePlan(pj)
		if err != nil {
			t.Fatalf("plan %d: %v", i, err)
		}
		planEqual(t, p, got)
		again, err := json.Marshal(EncodePlan(got))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw, again) {
			t.Fatalf("plan %d: re-encoding is not byte-identical\n  %s\n  %s", i, raw, again)
		}
		if got.Stats.Total() != p.Stats.Total() {
			t.Fatalf("plan %d: stage wall time lost: %v vs %v", i, got.Stats.Total(), p.Stats.Total())
		}
	}
}

// TestKeyParamRoundTrip checks the URL-token form of a Key.
func TestKeyParamRoundTrip(t *testing.T) {
	for _, p := range snapshotCorpus(t, 3) {
		tok := EncodeKeyParam(p.Key)
		if strings.ContainsAny(tok, "+/=&? ") {
			t.Fatalf("token %q is not URL-safe", tok)
		}
		k, err := DecodeKeyParam(tok)
		if err != nil {
			t.Fatal(err)
		}
		if k != p.Key {
			t.Fatalf("key round-trip mismatch:\n  %+v\n  %+v", p.Key, k)
		}
	}
	if _, err := DecodeKeyParam("not!base64"); err == nil {
		t.Fatal("garbage token decoded without error")
	}
}

// TestDecodePlanIntegrity checks that a tampered payload is refused:
// flipping content under an unchanged key must not produce a plan.
func TestDecodePlanIntegrity(t *testing.T) {
	p := snapshotCorpus(t, 1)[0]
	pj := EncodePlan(p)
	pj.Estimates = append([]rtime.Time(nil), pj.Estimates...)
	pj.Estimates[0]++
	if _, err := DecodePlan(pj); err == nil {
		t.Fatal("tampered estimates decoded without error")
	}

	pj = EncodePlan(p)
	pj.Workload.Graph.Tasks[0].WCET[0]++
	if _, err := DecodePlan(pj); err == nil {
		t.Fatal("tampered workload decoded without error")
	}

	pj = EncodePlan(p)
	pj.Schedule.Proc = pj.Schedule.Proc[:1]
	if _, err := DecodePlan(pj); err == nil {
		t.Fatal("ragged schedule decoded without error")
	}
}

// TestSnapshotRoundTripProperty is the torn-tail property test: for
// every truncation point of a valid snapshot file, and for a corrupted
// interior-free tail, Read recovers exactly the complete prefix of
// entries and each recovered plan is byte-identical to its original.
func TestSnapshotRoundTripProperty(t *testing.T) {
	plans := snapshotCorpus(t, 6)
	var buf bytes.Buffer
	if n, err := WriteSnapshot(&buf, plans); err != nil || n != len(plans) {
		t.Fatalf("write: n=%d err=%v", n, err)
	}
	full := buf.Bytes()
	lines := bytes.SplitAfter(full, []byte("\n"))
	// lines = header, plan 0..5, trailing empty slice.
	if len(lines) != len(plans)+2 {
		t.Fatalf("snapshot has %d lines, want %d", len(lines), len(plans)+2)
	}

	// Every complete-line prefix recovers exactly that many plans.
	for keep := 0; keep <= len(plans); keep++ {
		var pre bytes.Buffer
		for _, l := range lines[:1+keep] {
			pre.Write(l)
		}
		got, err := ReadSnapshot(&pre)
		if err != nil {
			t.Fatalf("keep=%d: %v", keep, err)
		}
		if len(got) != keep {
			t.Fatalf("keep=%d: recovered %d plans", keep, len(got))
		}
		for i := range got {
			planEqual(t, plans[i], got[i])
		}
	}

	// Every byte-level truncation recovers every plan whose line is
	// complete — never fewer, never a mangled extra. A final line cut
	// exactly before its trailing newline is complete: the record's
	// content is whole and passes integrity, so Read keeps it.
	for cut := len(full); cut > len(lines[0]); cut -= 37 {
		complete := 0
		off := len(lines[0])
		for i := 1; i <= len(plans); i++ {
			off += len(lines[i])
			if cut >= off-1 {
				complete = i
			}
		}
		got, err := ReadSnapshot(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(got) != complete {
			t.Fatalf("cut=%d: recovered %d plans, want %d", cut, len(got), complete)
		}
		for i := range got {
			planEqual(t, plans[i], got[i])
		}
	}

	// A corrupted interior line ends recovery there (the snapshot is a
	// cache, so a lost suffix is a performance event, not data loss).
	corrupt := bytes.Replace(full, []byte(`"key"`), []byte(`"k!y"`), 2)
	got, err := ReadSnapshot(bytes.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		// The first replacement lands in plan 0's line, so nothing
		// before it is recoverable; recovering 0 is the exact contract.
		t.Fatalf("corrupted first line still yielded %d plans", len(got))
	}

	// Wrong or missing header refuses the whole file.
	if _, err := ReadSnapshot(strings.NewReader("{\"snapshot\":\"other/v9\"}\n")); err == nil {
		t.Fatal("wrong header accepted")
	}
	if _, err := ReadSnapshot(strings.NewReader("")); err == nil {
		t.Fatal("empty file accepted as snapshot")
	}
}

// TestSaveLoadSnapshot drives the file-level API: save a populated
// cache, load into a fresh one, and check residency, recency order,
// and that a missing file is a silent cold start.
func TestSaveLoadSnapshot(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.snap")

	c := NewCache(8)
	plans := snapshotCorpus(t, 5)
	for _, p := range plans {
		c.Install(p)
	}
	n, err := SaveSnapshot(path, c)
	if err != nil || n != 5 {
		t.Fatalf("save: n=%d err=%v", n, err)
	}

	fresh := NewCache(8)
	n, err = LoadSnapshot(path, fresh)
	if err != nil || n != 5 {
		t.Fatalf("load: n=%d err=%v", n, err)
	}
	if fresh.Len() != 5 {
		t.Fatalf("loaded cache holds %d plans", fresh.Len())
	}
	for _, p := range plans {
		got, ok := fresh.Lookup(p.Key)
		if !ok {
			t.Fatalf("plan %v missing after load", p.Key.Workload)
		}
		planEqual(t, p, got)
	}

	// Recency survives: with a single-shard cache the LRU order is
	// exact, so overflowing by one must evict the oldest install.
	small := NewCache(5)
	if _, err := LoadSnapshot(path, small); err != nil {
		t.Fatal(err)
	}
	extra := snapshotCorpus(t, 6)[5]
	small.Install(extra)
	if small.Contains(plans[0].Key) {
		t.Fatal("oldest plan survived an overflow — recency order lost")
	}
	if !small.Contains(extra.Key) || !small.Contains(plans[4].Key) {
		t.Fatal("recent plans evicted instead of the oldest")
	}

	// Missing file: cold start, not an error.
	n, err = LoadSnapshot(filepath.Join(dir, "absent.snap"), NewCache(8))
	if n != 0 || err != nil {
		t.Fatalf("missing snapshot: n=%d err=%v", n, err)
	}

	// A non-snapshot file is refused loudly.
	junk := filepath.Join(dir, "junk")
	if err := os.WriteFile(junk, []byte("hello\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSnapshot(junk, NewCache(8)); err == nil {
		t.Fatal("junk file loaded as snapshot")
	}

	// Saving over an existing snapshot is atomic-replace: the new file
	// carries the new contents and no temp litter remains.
	c2 := NewCache(8)
	c2.Install(plans[0])
	if n, err := SaveSnapshot(path, c2); err != nil || n != 1 {
		t.Fatalf("re-save: n=%d err=%v", n, err)
	}
	reload := NewCache(8)
	if n, err := LoadSnapshot(path, reload); err != nil || n != 1 {
		t.Fatalf("re-load: n=%d err=%v", n, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %q left behind", e.Name())
		}
	}
}

// TestCacheAccessors pins the export surface the fleet layer depends
// on: Keys/Plans agree, Contains does not bump recency, Lookup does.
func TestCacheAccessors(t *testing.T) {
	c := NewCache(3) // single shard → exact LRU
	plans := snapshotCorpus(t, 3)
	for _, p := range plans {
		c.Install(p)
	}
	keys := c.Keys()
	resident := c.Plans()
	if len(keys) != 3 || len(resident) != 3 {
		t.Fatalf("Keys/Plans = %d/%d entries", len(keys), len(resident))
	}
	for i := range keys {
		if resident[i].Key != keys[i] {
			t.Fatalf("Keys and Plans disagree at %d", i)
		}
	}
	if keys[0] != plans[0].Key {
		t.Fatal("Keys is not oldest-first")
	}

	// Contains must not promote: probe the oldest, overflow, and the
	// probed entry must still be the eviction victim.
	if !c.Contains(plans[0].Key) {
		t.Fatal("Contains missed a resident key")
	}
	c.Install(snapshotCorpus(t, 4)[3])
	if c.Contains(plans[0].Key) {
		t.Fatal("Contains promoted the oldest entry")
	}

	// Lookup must promote: bump the now-oldest, overflow, and the
	// bumped entry must survive.
	if _, ok := c.Lookup(plans[1].Key); !ok {
		t.Fatal("Lookup missed a resident key")
	}
	c.Install(snapshotCorpus(t, 5)[4])
	if !c.Contains(plans[1].Key) {
		t.Fatal("Lookup did not protect the bumped entry from eviction")
	}
	if c.Contains(plans[2].Key) {
		t.Fatal("eviction took the wrong entry after a Lookup bump")
	}
}

// TestSnapshotServesWithoutRebuild is the end-to-end restart story at
// package level: build, save, "restart" into a new cache, and check a
// Build through the restored cache is a hit, not a cold build.
func TestSnapshotServesWithoutRebuild(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plans.snap")

	rec := &Recorder{}
	cache := NewCache(64)
	b := &Builder{Cache: cache, Recorder: rec}
	cfg := gen.Default(7)
	cfg.Seed = 424242
	w := gen.MustGenerate(cfg)
	if _, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform}); err != nil {
		t.Fatal(err)
	}
	if _, err := SaveSnapshot(path, cache); err != nil {
		t.Fatal(err)
	}

	rec2 := &Recorder{}
	cache2 := NewCache(64)
	if n, err := LoadSnapshot(path, cache2); err != nil || n != 1 {
		t.Fatalf("load: n=%d err=%v", n, err)
	}
	b2 := &Builder{Cache: cache2, Recorder: rec2}
	p, err := b2.Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}
	sum := rec2.Summary()
	if sum.Builds != 0 || sum.Hits != 1 {
		t.Fatalf("restored cache: builds=%d hits=%d, want 0 builds 1 hit", sum.Builds, sum.Hits)
	}
	if !p.Verdict.Feasible && p.Verdict.MaxLateness == 0 && p.Schedule == nil {
		t.Fatal("restored plan is empty")
	}
}
