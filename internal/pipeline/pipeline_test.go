package pipeline

import (
	"strings"
	"testing"

	"repro/internal/deadline"
	"repro/internal/feas"
	"repro/internal/gen"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

func workload(t testing.TB, seed int64) *gen.Workload {
	t.Helper()
	cfg := gen.Default(3)
	cfg.Seed = seed
	w, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// TestBuildMatchesHandRolled pins the refactor's core contract: a Build
// is field-for-field identical to the hand-rolled stage sequence every
// call site used to inline.
func TestBuildMatchesHandRolled(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		w := workload(t, seed)
		for _, disp := range []Dispatcher{TimeDriven(), Planner()} {
			b := &Builder{
				Distributor: deadline.Sliced{Metric: slicing.AdaptL(), Params: slicing.CalibratedParams()},
				Dispatcher:  disp,
				Verifier:    FeasVerifier(),
			}
			plan, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, disp.Name, err)
			}

			est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
			if err != nil {
				t.Fatal(err)
			}
			asg, err := slicing.Distribute(w.Graph, est, w.Platform.M(), slicing.AdaptL(), slicing.CalibratedParams())
			if err != nil {
				t.Fatal(err)
			}
			var s *sched.Schedule
			if disp.Name == "planner" {
				s, err = sched.EDF(w.Graph, w.Platform, asg)
			} else {
				s, err = sched.Dispatch(w.Graph, w.Platform, asg)
			}
			if err != nil {
				t.Fatal(err)
			}
			bad, ferr := feas.Infeasible(w.Graph, w.Platform, asg)

			for i, c := range est {
				if plan.Estimates[i] != c {
					t.Fatalf("seed %d: estimate %d = %d, want %d", seed, i, plan.Estimates[i], c)
				}
			}
			for i := range asg.AbsDeadline {
				if plan.Assignment.AbsDeadline[i] != asg.AbsDeadline[i] ||
					plan.Assignment.Arrival[i] != asg.Arrival[i] {
					t.Fatalf("seed %d: window %d diverged", seed, i)
				}
			}
			if plan.Verdict.Feasible != s.Feasible ||
				plan.Verdict.OverConstrained != asg.OverConstrained ||
				plan.Verdict.MaxLateness != s.MaxLateness ||
				plan.Verdict.MinLaxity != asg.MinLaxity(est) ||
				plan.Verdict.ProvablyInfeasible != (ferr == nil && bad) {
				t.Fatalf("seed %d %s: verdict %+v diverged from hand-rolled stages", seed, disp.Name, plan.Verdict)
			}
			if plan.Schedule.Makespan != s.Makespan || len(plan.Schedule.Missed) != len(s.Missed) {
				t.Fatalf("seed %d %s: schedule diverged", seed, disp.Name)
			}
		}
	}
}

func TestCacheHitSharesPlan(t *testing.T) {
	w := workload(t, 3)
	rec := NewRecorder(false)
	b := &Builder{Cache: NewCache(8), Recorder: rec}
	p1, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("second build of an identical spec did not hit the cache")
	}
	if sum := rec.Summary(); sum.Builds != 1 || sum.Hits != 1 {
		t.Errorf("recorder = %d builds, %d hits; want 1, 1", sum.Builds, sum.Hits)
	}
}

// TestGivenEstimatesShareNamespace: a plan built via the estimator
// strategy must be a cache hit for a later build that passes the same
// estimates explicitly — this is what lets the re-slicing loop's round 0
// reuse the nominal plan of the margin study.
func TestGivenEstimatesShareNamespace(t *testing.T) {
	w := workload(t, 4)
	b := &Builder{Cache: NewCache(8)}
	p1, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform, Estimates: p1.Estimates})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("explicit-estimate build missed the strategy-built plan")
	}
}

func TestCacheKeySeparatesConfigs(t *testing.T) {
	w := workload(t, 5)
	cache := NewCache(16)
	spec := Spec{Graph: w.Graph, Platform: w.Platform}
	params2 := slicing.CalibratedParams()
	params2.KL *= 2
	builders := []*Builder{
		{Cache: cache},
		{Cache: cache, Distributor: deadline.Sliced{Metric: slicing.PURE(), Params: slicing.CalibratedParams()}},
		{Cache: cache, Distributor: deadline.Sliced{Metric: slicing.AdaptL(), Params: params2}},
		{Cache: cache, Dispatcher: Planner()},
		{Cache: cache, Verifier: FeasVerifier()},
		{Cache: cache, Distributor: deadline.UD{}},
	}
	seen := make(map[Key]bool)
	for i, b := range builders {
		plan, err := b.Build(spec)
		if err != nil {
			t.Fatalf("builder %d: %v", i, err)
		}
		if seen[plan.Key] {
			t.Errorf("builder %d collided with an earlier configuration: %+v", i, plan.Key)
		}
		seen[plan.Key] = true
	}
	if cache.Len() != len(builders) {
		t.Errorf("cache holds %d plans, want %d", cache.Len(), len(builders))
	}
}

func TestFingerprint(t *testing.T) {
	w1, w2 := workload(t, 6), workload(t, 7)
	if Fingerprint(w1.Graph, w1.Platform) == Fingerprint(w2.Graph, w2.Platform) {
		t.Error("different workloads share a fingerprint")
	}
	if Fingerprint(w1.Graph, w1.Platform) != Fingerprint(w1.Graph, w1.Platform) {
		t.Error("fingerprint is not deterministic")
	}
	// Display names must not affect the fingerprint.
	before := Fingerprint(w1.Graph, w1.Platform)
	saved := w1.Graph.Task(0).Name
	w1.Graph.Task(0).Name = "renamed"
	if Fingerprint(w1.Graph, w1.Platform) != before {
		t.Error("renaming a task changed the fingerprint")
	}
	w1.Graph.Task(0).Name = saved
	// A WCET change must.
	w1.Graph.Task(0).WCET[0]++
	if Fingerprint(w1.Graph, w1.Platform) == before {
		t.Error("a WCET change left the fingerprint unchanged")
	}
	w1.Graph.Task(0).WCET[0]--
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	for i := 0; i < 3; i++ {
		c.put(Key{Workload: uint64(i)}, &Plan{})
	}
	if c.Len() != 2 {
		t.Fatalf("cache holds %d plans, want 2", c.Len())
	}
	if _, ok := c.get(Key{Workload: 0}); ok {
		t.Error("least-recently-used plan was not evicted")
	}
	if _, ok := c.get(Key{Workload: 2}); !ok {
		t.Error("most-recently-inserted plan was evicted")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Error("Purge left plans behind")
	}
}

func TestExplicitEstimatesAreCopied(t *testing.T) {
	w := workload(t, 8)
	est, err := Estimate(w.Graph, w.Platform, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	b := &Builder{}
	plan, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform, Estimates: est})
	if err != nil {
		t.Fatal(err)
	}
	est[0] += 1000
	if plan.Estimates[0] == est[0] {
		t.Error("plan aliases the caller's estimate slice")
	}
}

func TestRecorderFormat(t *testing.T) {
	w := workload(t, 9)
	rec := NewRecorder(true)
	b := &Builder{Recorder: rec, Verifier: FeasVerifier()}
	if _, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform}); err != nil {
		t.Fatal(err)
	}
	out := rec.Summary().Format()
	for _, want := range []string{"1 builds", "0 cache hits", "slice", "dispatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format() = %q, missing %q", out, want)
		}
	}
	if sum := rec.Summary(); sum.Slice.Allocs == 0 {
		t.Error("alloc counting was requested but recorded no allocations")
	}
}

// TestProbe pins the cache-only lookup: same key as a real build, nil
// plan before the build, the built plan after, and no recorder traffic
// either way.
func TestProbe(t *testing.T) {
	cfg := gen.Default(5)
	cfg.Seed = 99
	w := gen.MustGenerate(cfg)
	spec := Spec{Graph: w.Graph, Platform: w.Platform}
	rec := NewRecorder(false)
	b := &Builder{Cache: NewCache(8), Recorder: rec}

	plan, key, err := b.Probe(spec)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Fatal("probe before any build should miss")
	}
	built, err := b.Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if built.Key != key {
		t.Fatalf("probe key %+v != build key %+v", key, built.Key)
	}
	hit, _, err := b.Probe(spec)
	if err != nil {
		t.Fatal(err)
	}
	if hit != built {
		t.Fatal("probe after build should return the cached plan")
	}
	if sum := rec.Summary(); sum.Hits != 0 || sum.Builds != 1 {
		t.Fatalf("probe must not touch the recorder: %+v", sum)
	}

	if _, _, err := (&Builder{}).Probe(Spec{}); err == nil {
		t.Fatal("probe of an empty spec should fail")
	}
}

func TestBuildRejectsEmptySpec(t *testing.T) {
	if _, err := (&Builder{}).Build(Spec{}); err == nil {
		t.Fatal("Build accepted an empty spec")
	}
}

func TestStageStatsPopulated(t *testing.T) {
	w := workload(t, 10)
	plan, err := (&Builder{}).Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Stats.Slice.Wall <= 0 || plan.Stats.Dispatch.Wall <= 0 || plan.Stats.Estimate.Wall <= 0 {
		t.Errorf("stage walls not populated: %+v", plan.Stats)
	}
	if plan.Stats.Total() < plan.Stats.Slice.Wall {
		t.Error("Total() lost a stage")
	}
}
