// Package pipeline is the single, instrumented implementation of the
// planning sequence every layer of this repository used to hand-roll:
//
//	estimate (wcet) → slice (deadline distribution) → dispatch (sched)
//	→ verdict (feasibility + secondary measures)
//
// A Builder bundles one configuration of the four stages as named,
// pluggable hooks; Build executes them on a workload Spec and returns an
// immutable Plan artifact carrying every stage product (estimates,
// assignment, schedule, verdict) plus per-stage wall-time and allocation
// counters. Because a Plan is a pure function of (workload fingerprint,
// estimates, distributor, dispatcher, verifier), Builds can be memoized:
// an optional LRU Cache keyed by exactly that tuple lets re-slicing
// loops, breakdown bisection, degradation mode ladders, and multi-cell
// sweeps stop re-planning identical inputs. An optional Recorder
// aggregates stage statistics across builds (the `sweep -stats` view).
//
// Builds draw their transient working memory from a pooled
// BuildScratch (BuildWith accepts a caller-owned one), so the cold
// path's allocations are essentially the Plan itself; scratch never
// aliases into a Plan. Consumers that re-plan the same graph under
// slightly changed inputs — the re-slice correction loop, the degrade
// ladder, brownout cheap builds — use a Replanner
// (Builder.NewReplanner) whose Rebuild applies a declared Delta
// (estimates, single-task WCET, window overrides, or a full workload
// swap) to a previous Plan, reusing everything the delta provably left
// intact while producing a Plan byte-identical to a cold Build. See
// DESIGN.md §11 for the memory model and the delta contract.
//
// The experiment harness, the robustness instruments (robust), the
// degradation study, the annealing search, and the cmd front-ends all
// consume this package; none of them pair slicing.Distribute with
// sched.Dispatch directly anymore, so cross-cutting work — timing,
// counters, caching, new verdict measures — is wired exactly once, here.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/arch"
	"repro/internal/deadline"
	"repro/internal/feas"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

// Spec is one planning request: the workload, plus optionally
// pre-computed WCET estimates that bypass the estimator stage (the
// re-slicing feedback loop feeds corrected estimates this way).
type Spec struct {
	Graph    *taskgraph.Graph
	Platform *arch.Platform
	// Estimates, when non-nil, are used verbatim and the estimator
	// stage is skipped. The slice is copied into the Plan, never
	// aliased.
	Estimates []rtime.Time
}

// Estimator is the named first-stage hook: per-task WCET estimates from
// the workload. The zero value makes Build fall back to the paper's
// WCET-AVG strategy.
type Estimator struct {
	Name string
	Run  func(g *taskgraph.Graph, p *arch.Platform) ([]rtime.Time, error)
}

// StrategyEstimator adapts a wcet.Strategy (§5.3) to the estimator hook.
func StrategyEstimator(s wcet.Strategy) Estimator {
	return Estimator{Name: s.String(), Run: func(g *taskgraph.Graph, p *arch.Platform) ([]rtime.Time, error) {
		return wcet.Estimates(g, p, s)
	}}
}

// Estimate runs the estimator stage alone; single-stage consumers (the
// public api surface, viewers) use it so the stage has one home.
func Estimate(g *taskgraph.Graph, p *arch.Platform, s wcet.Strategy) ([]rtime.Time, error) {
	return wcet.Estimates(g, p, s)
}

// Slice runs the deadline-distribution stage alone with the slicing
// technique (Figure 1).
func Slice(g *taskgraph.Graph, est []rtime.Time, m int, metric slicing.Metric, params slicing.Params) (*slicing.Assignment, error) {
	return slicing.Distribute(g, est, m, metric, params)
}

// Dispatcher is the named third-stage hook: a window assignment into a
// concrete schedule. The zero value makes Build fall back to TimeDriven.
// RunScratch, when non-nil, is preferred by pooled builds: it must
// produce the same schedule as Run while drawing working memory from the
// supplied scratch (never aliasing it into the schedule).
type Dispatcher struct {
	Name       string
	Run        func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*sched.Schedule, error)
	RunScratch func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, ws *sched.Scratch) (*sched.Schedule, error)
}

// TimeDriven is the paper's non-preemptive time-driven EDF dispatcher.
func TimeDriven() Dispatcher {
	return Dispatcher{
		Name: "time-driven",
		Run:  sched.Dispatch,
		RunScratch: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, ws *sched.Scratch) (*sched.Schedule, error) {
			return sched.DispatchScratch(g, p, asg, sched.EDFPolicy, ws)
		},
	}
}

// Planner is the offline greedy EDF list scheduler with per-processor
// reservation.
func Planner() Dispatcher {
	return Dispatcher{Name: "planner", Run: sched.EDF, RunScratch: sched.EDFScratch}
}

// Insertion is the insertion-based (backfilling) offline EDF variant.
func Insertion() Dispatcher {
	return Dispatcher{Name: "insertion", Run: sched.InsertEDF, RunScratch: sched.InsertEDFScratch}
}

// Preemptive is the global preemptive EDF dispatcher with migration.
// The Plan records its embedded non-preemptive verdict view (feasibility,
// lateness, placements); callers needing the slice-level detail run
// sched.DispatchPreemptive directly.
func Preemptive() Dispatcher {
	return Dispatcher{Name: "preemptive", Run: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*sched.Schedule, error) {
		ps, err := sched.DispatchPreemptive(g, p, asg)
		if err != nil {
			return nil, err
		}
		return &ps.Schedule, nil
	}}
}

// WithPolicy is the time-driven dispatcher under an alternative
// ready-task policy (§7.3's policy axis).
func WithPolicy(pol sched.Policy) Dispatcher {
	return Dispatcher{
		Name: "policy:" + pol.String(),
		Run: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (*sched.Schedule, error) {
			return sched.DispatchWith(g, p, asg, pol)
		},
		RunScratch: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, ws *sched.Scratch) (*sched.Schedule, error) {
			return sched.DispatchScratch(g, p, asg, pol, ws)
		},
	}
}

// VerifyOutcome is the verifier stage's three-valued verdict. Verifiers
// are proof procedures, not heuristics: Accepted means every deadline is
// proven met, Rejected means at least one deadline is proven missed, and
// Inconclusive means the verifier could prove neither (the assignment
// may still schedule fine — only a replay can tell).
type VerifyOutcome int

const (
	// VerifyNone: no verifier ran on this plan.
	VerifyNone VerifyOutcome = iota
	// VerifyAccepted: the verifier proved every deadline met.
	VerifyAccepted
	// VerifyRejected: the verifier proved the plan unschedulable.
	VerifyRejected
	// VerifyInconclusive: the verifier could not decide either way.
	VerifyInconclusive
)

// String implements fmt.Stringer.
func (o VerifyOutcome) String() string {
	switch o {
	case VerifyNone:
		return "none"
	case VerifyAccepted:
		return "accepted"
	case VerifyRejected:
		return "rejected"
	case VerifyInconclusive:
		return "inconclusive"
	}
	return fmt.Sprintf("VerifyOutcome(%d)", int(o))
}

// Verifier is the named optional fourth-stage hook: an independent
// schedulability verdict on the assignment. It runs after dispatch, so
// replay-style verifiers get the concrete schedule; analytic verifiers
// may ignore it. The zero value skips the stage. RunScratch, when
// non-nil, is preferred by pooled builds and must return the same
// verdict as Run over the supplied scratch.
type Verifier struct {
	Name       string
	Run        func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule) (VerifyOutcome, error)
	RunScratch func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, s *sched.Schedule, sc *feas.Scratch) (VerifyOutcome, error)
}

// FeasVerifier runs the fast necessary feasibility conditions; a
// Rejected verdict proves the assignment unschedulable by every
// scheduler (the failure is the metric's fault, not the dispatcher's).
// Passing the conditions proves nothing, so the positive outcome is
// Inconclusive, never Accepted. Condition-check errors are swallowed —
// an uncheckable assignment is simply not provably infeasible.
func FeasVerifier() Verifier {
	return Verifier{
		Name: "feas",
		Run: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, _ *sched.Schedule) (VerifyOutcome, error) {
			bad, err := feas.Infeasible(g, p, asg)
			if err == nil && bad {
				return VerifyRejected, nil
			}
			return VerifyInconclusive, nil
		},
		RunScratch: func(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, _ *sched.Schedule, sc *feas.Scratch) (VerifyOutcome, error) {
			bad, err := feas.InfeasibleScratch(g, p, asg, sc)
			if err == nil && bad {
				return VerifyRejected, nil
			}
			return VerifyInconclusive, nil
		},
	}
}

// Shared bundles the cross-run pipeline state callers may thread through
// study configurations: the plan cache and the instrumentation recorder.
// Both are safe for concurrent use; the zero value plans uncached and
// unrecorded.
type Shared struct {
	Cache    *Cache
	Recorder *Recorder
}

// Builder bundles one configuration of the pipeline stages. The zero
// value is usable: WCET-AVG estimates, ADAPT-L slicing with calibrated
// parameters, the time-driven dispatcher, no extra verifier, no cache.
// A Builder is immutable after first use and safe for concurrent Build
// calls.
type Builder struct {
	Estimator   Estimator
	Distributor deadline.Distributor
	Dispatcher  Dispatcher
	Verifier    Verifier
	// Cache, when non-nil, memoizes Plans by Key. Plans are immutable,
	// so sharing one cache across goroutines and studies is safe; a
	// custom Distributor whose behavior is not fully captured by its
	// Name() (e.g. the annealing search's per-candidate virtual costs)
	// must not share a cache.
	Cache *Cache
	// Recorder, when non-nil, accumulates per-stage statistics and
	// cache hit/miss counts across builds.
	Recorder *Recorder
	// Quality tags every Plan this builder produces (see Quality). The
	// zero value is QualityFull. A degraded builder's cheapened
	// configuration is already part of the cache key (distributor,
	// dispatcher, verifier names), so the tag never has to be — it only
	// rides along so consumers can tell a substitute plan from the real
	// thing.
	Quality Quality
}

// Verdict is the schedulability outcome of a Plan, folding the primary
// success measure and the paper's secondary quality measures (§4.2).
type Verdict struct {
	// Feasible reports that the schedule met every assigned deadline.
	Feasible bool
	// OverConstrained reports that slicing produced an empty window —
	// a guaranteed failure.
	OverConstrained bool
	// ProvablyInfeasible reports that the verifier proved the plan
	// unschedulable (false when no verifier ran); it is Proof ==
	// VerifyRejected, kept as a field for wire and API compatibility.
	ProvablyInfeasible bool
	// Proof is the verifier's full three-valued outcome (VerifyNone when
	// no verifier ran). VerifyAccepted is a proof that every deadline is
	// met — the analytic fast path's positive certificate.
	Proof VerifyOutcome
	// MaxLateness is max(fᵢ − Dᵢ) over placed tasks.
	MaxLateness rtime.Time
	// MinLaxity is the minimum task laxity of the assignment.
	MinLaxity rtime.Time
}

// StageStats instruments one stage execution of one Build.
type StageStats struct {
	// Wall is the stage's wall-clock time.
	Wall time.Duration
	// Allocs and Bytes are the process-wide heap allocation deltas
	// across the stage, filled only when the Builder's Recorder counts
	// allocations (they include concurrent goroutines' allocations, so
	// they are exact in single-threaded profiling runs and indicative
	// under a worker pool).
	Allocs uint64
	Bytes  uint64
}

// PlanStats carries the per-stage instrumentation of one Build.
type PlanStats struct {
	Estimate StageStats
	Slice    StageStats
	Dispatch StageStats
	Verify   StageStats
}

// Total returns the summed wall time of all stages.
func (s PlanStats) Total() time.Duration {
	return s.Estimate.Wall + s.Slice.Wall + s.Dispatch.Wall + s.Verify.Wall
}

// Quality tags how a Plan was built relative to the full-fidelity
// pipeline configuration. The serving layer's brownout ladder builds
// cheap substitute plans under overload; tagging the artifact itself
// lets caches, snapshots, and fleet fills carry the distinction along
// with the plan instead of losing it at the first process boundary.
type Quality int

const (
	// QualityFull is the default: the plan was built with the
	// configuration the caller asked for.
	QualityFull Quality = iota
	// QualityDegraded marks a plan built through a deliberately cheaper
	// configuration (e.g. the brownout ladder's NORM-metric substitute
	// for an ADAPT-L request).
	QualityDegraded
)

// String implements fmt.Stringer.
func (q Quality) String() string {
	switch q {
	case QualityFull:
		return "full"
	case QualityDegraded:
		return "degraded"
	}
	return fmt.Sprintf("Quality(%d)", int(q))
}

// Plan is the immutable artifact of one pipeline execution. Cached
// plans are shared across goroutines — consumers must not mutate any
// field or pointee.
type Plan struct {
	// Key identifies the plan: workload fingerprint, estimate hash, and
	// the named stage configuration.
	Key Key
	// Graph and Platform are the planned workload.
	Graph    *taskgraph.Graph
	Platform *arch.Platform
	// Estimates are the resolved per-task WCET estimates c̄.
	Estimates []rtime.Time
	// Assignment is the window assignment the distributor produced.
	Assignment *slicing.Assignment
	// Schedule is the dispatcher's schedule.
	Schedule *sched.Schedule
	// Verdict folds the schedulability outcome.
	Verdict Verdict
	// Quality records whether the build ran the caller's full
	// configuration or a deliberately cheapened one (see Quality).
	Quality Quality
	// Estimator names the estimator stage that produced Estimates, or ""
	// when the spec supplied them verbatim (re-slicing feedback, window
	// replays). Consumers gating on how estimates were derived (the
	// serving layer's brownout reuse) read this instead of guessing.
	Estimator string
	// Stats instruments the build that produced this plan (a cache hit
	// returns the original build's stats).
	Stats PlanStats
}

func (b *Builder) estimator() Estimator {
	if b.Estimator.Run == nil {
		return StrategyEstimator(wcet.AVG)
	}
	return b.Estimator
}

func (b *Builder) distributor() deadline.Distributor {
	if b.Distributor == nil {
		return deadline.Sliced{Metric: slicing.AdaptL(), Params: slicing.CalibratedParams()}
	}
	return b.Distributor
}

func (b *Builder) dispatcher() Dispatcher {
	if b.Dispatcher.Run == nil {
		return TimeDriven()
	}
	return b.Dispatcher
}

// Build executes the pipeline on one workload and returns its Plan,
// consulting the cache first when one is configured. Stage errors
// propagate unwrapped (and uncached), exactly as the hand-rolled call
// sequences did. Build never gives up early: it is BuildContext under
// the background context.
func (b *Builder) Build(spec Spec) (*Plan, error) {
	return b.BuildContext(context.Background(), spec)
}

// BuildContext is Build under a cancellation context. The stages
// themselves are uninterruptible CPU-bound routines, so cancellation is
// cooperative: the context is checked at every stage boundary, and a
// done context ends the build with ctx.Err() before the next stage
// starts. Canceled builds are never cached and count in the Recorder's
// Canceled column, not as errors.
//
// With a configured Cache, concurrent Builds of one Key coalesce:
// exactly one executes the stages while the others wait for its plan
// (or give up when their own context is done first). A waiter whose
// leader was itself canceled retries — the next round either finds the
// plan another builder finished, or becomes the leader.
func (b *Builder) BuildContext(ctx context.Context, spec Spec) (*Plan, error) {
	return b.buildContextWith(ctx, spec, nil)
}

// BuildWith is Build over caller-owned scratch: cold working sets come
// from sc instead of cycling through the package pool, so a
// single-threaded build loop reuses one warm scratch with no pool
// traffic. sc must not be shared between concurrent builds; nil is
// Build.
func (b *Builder) BuildWith(spec Spec, sc *BuildScratch) (*Plan, error) {
	return b.buildContextWith(context.Background(), spec, sc)
}

func (b *Builder) buildContextWith(ctx context.Context, spec Spec, sc *BuildScratch) (*Plan, error) {
	if spec.Graph == nil || spec.Platform == nil {
		return nil, fmt.Errorf("pipeline: Spec needs a graph and a platform")
	}
	if err := b.stageGate(ctx); err != nil {
		return nil, err
	}
	var stats PlanStats
	countAllocs := b.Recorder.countsAllocs()

	// Stage 1: estimate. Always executed (it is O(n) and its output is
	// part of the cache key), unless the spec supplies estimates.
	var est []rtime.Time
	var estName string
	if spec.Estimates != nil {
		est = append([]rtime.Time(nil), spec.Estimates...)
	} else {
		e := b.estimator()
		estName = e.Name
		probe := beginStage(countAllocs)
		var err error
		est, err = e.Run(spec.Graph, spec.Platform)
		stats.Estimate = probe.end()
		if err != nil {
			b.Recorder.recordError()
			return nil, err
		}
	}

	dist := b.distributor()
	distName, params := distributorKey(dist)
	key := Key{
		Workload:    Fingerprint(spec.Graph, spec.Platform),
		Estimates:   hashTimes(est),
		Distributor: distName,
		Params:      params,
		Dispatcher:  b.dispatcher().Name,
		Verifier:    b.Verifier.Name,
	}
	plan, _, err := b.buildKeyed(ctx, spec, dist, key, est, estName, stats, sc)
	return plan, err
}

// buildKeyed is the shared back half of BuildContext and Rebuild: the
// key is already computed, the estimates resolved. It consults the
// cache (coalescing concurrent builds of one key) and otherwise runs the
// cold stages over sc — nil draws a pooled BuildScratch. The returned
// hit flag reports a plan served from cache residency (coalesced waiters
// report false: they paid the wait, not nothing).
func (b *Builder) buildKeyed(ctx context.Context, spec Spec, dist deadline.Distributor,
	key Key, est []rtime.Time, estName string, stats PlanStats, sc *BuildScratch) (*Plan, bool, error) {

	if b.Cache == nil {
		plan, err := b.buildCold(ctx, spec, dist, key, est, estName, stats, sc)
		return plan, false, err
	}
	for {
		plan, f, leader := b.Cache.acquire(key)
		switch {
		case plan != nil:
			b.Recorder.recordHit()
			return plan, true, nil
		case leader:
			plan, err := b.buildLeader(ctx, spec, dist, key, est, estName, stats, sc, f)
			return plan, false, err
		}
		// Another build of this key is in flight: wait for its plan
		// instead of duplicating the work.
		b.Recorder.recordCoalesced()
		select {
		case <-f.done:
			if f.err != nil {
				if isCancellation(f.err) {
					// The leader's *request* died, not the build; this
					// request is still live, so try again.
					continue
				}
				return nil, false, f.err
			}
			return f.plan, false, nil
		case <-ctx.Done():
			b.Recorder.recordCanceled()
			return nil, false, ctx.Err()
		}
	}
}

// Probe computes spec's cache key under this builder's configuration —
// running the estimator stage when the spec carries no estimates — and
// consults the cache without ever building. It returns the resident
// plan (nil on a miss, or when the builder has no cache) alongside the
// key, so a caller refusing cold work under overload can answer from
// residency alone. Probe is a pure lookup: it records neither hits nor
// builds in the Recorder and never joins an in-flight build.
func (b *Builder) Probe(spec Spec) (*Plan, Key, error) {
	if spec.Graph == nil || spec.Platform == nil {
		return nil, Key{}, fmt.Errorf("pipeline: Spec needs a graph and a platform")
	}
	est := spec.Estimates
	if est == nil {
		var err error
		est, err = b.estimator().Run(spec.Graph, spec.Platform)
		if err != nil {
			return nil, Key{}, err
		}
	}
	distName, params := distributorKey(b.distributor())
	key := Key{
		Workload:    Fingerprint(spec.Graph, spec.Platform),
		Estimates:   hashTimes(est),
		Distributor: distName,
		Params:      params,
		Dispatcher:  b.dispatcher().Name,
		Verifier:    b.Verifier.Name,
	}
	if b.Cache == nil {
		return nil, key, nil
	}
	plan, ok := b.Cache.Lookup(key)
	if !ok {
		return nil, key, nil
	}
	return plan, key, nil
}

// buildLeader runs the cold build as the owner of an in-flight entry,
// guaranteeing the flight resolves even when a stage panics (the panic
// itself propagates on, preserving the worker pool's panic isolation).
func (b *Builder) buildLeader(ctx context.Context, spec Spec, dist deadline.Distributor,
	key Key, est []rtime.Time, estName string, stats PlanStats, sc *BuildScratch, f *flight) (plan *Plan, err error) {

	completed := false
	defer func() {
		if !completed {
			b.Cache.complete(key, f, nil, fmt.Errorf("pipeline: build of %v panicked", key.Distributor))
		}
	}()
	plan, err = b.buildCold(ctx, spec, dist, key, est, estName, stats, sc)
	completed = true
	b.Cache.complete(key, f, plan, err)
	return plan, err
}

// buildCold executes the slice, dispatch, and verify stages; the
// estimate stage already ran (its hash is part of key). The plan is not
// inserted into the cache here — with a cache, buildLeader publishes it
// through the flight so waiters and the LRU table update atomically.
func (b *Builder) buildCold(ctx context.Context, spec Spec, dist deadline.Distributor,
	key Key, est []rtime.Time, estName string, stats PlanStats, sc *BuildScratch) (*Plan, error) {

	countAllocs := b.Recorder.countsAllocs()
	if sc == nil {
		sc = getScratch()
		defer putScratch(sc)
	}

	// Stage 2: slice.
	if err := b.stageGate(ctx); err != nil {
		return nil, err
	}
	probe := beginStage(countAllocs)
	var asg *slicing.Assignment
	var err error
	if wd, ok := dist.(deadline.WorkspaceDistributor); ok {
		asg, err = wd.DistributeWith(sc.Slicing, spec.Graph, est, spec.Platform.M())
	} else {
		asg, err = dist.Distribute(spec.Graph, est, spec.Platform.M())
	}
	stats.Slice = probe.end()
	if err != nil {
		b.Recorder.recordError()
		return nil, err
	}

	// Stage 3: dispatch.
	if err := b.stageGate(ctx); err != nil {
		return nil, err
	}
	d := b.dispatcher()
	probe = beginStage(countAllocs)
	var s *sched.Schedule
	if d.RunScratch != nil {
		s, err = d.RunScratch(spec.Graph, spec.Platform, asg, sc.Sched)
	} else {
		s, err = d.Run(spec.Graph, spec.Platform, asg)
	}
	stats.Dispatch = probe.end()
	if err != nil {
		b.Recorder.recordError()
		return nil, err
	}

	// Stage 4: verdict (+ optional verifier).
	verdict := Verdict{
		Feasible:        s.Feasible,
		OverConstrained: asg.OverConstrained,
		MaxLateness:     s.MaxLateness,
		MinLaxity:       asg.MinLaxity(est),
	}
	if b.Verifier.Run != nil || b.Verifier.RunScratch != nil {
		if err := b.stageGate(ctx); err != nil {
			return nil, err
		}
		probe = beginStage(countAllocs)
		var outcome VerifyOutcome
		if b.Verifier.RunScratch != nil {
			outcome, err = b.Verifier.RunScratch(spec.Graph, spec.Platform, asg, s, sc.Feas)
		} else {
			outcome, err = b.Verifier.Run(spec.Graph, spec.Platform, asg, s)
		}
		stats.Verify = probe.end()
		if err != nil {
			b.Recorder.recordError()
			return nil, err
		}
		verdict.Proof = outcome
		verdict.ProvablyInfeasible = outcome == VerifyRejected
	}

	plan := &Plan{
		Key:        key,
		Graph:      spec.Graph,
		Platform:   spec.Platform,
		Estimates:  est,
		Assignment: asg,
		Schedule:   s,
		Verdict:    verdict,
		Quality:    b.Quality,
		Estimator:  estName,
		Stats:      stats,
	}
	b.Recorder.recordBuild(stats)
	return plan, nil
}

// stageGate is the cooperative cancellation check between stages.
func (b *Builder) stageGate(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		b.Recorder.recordCanceled()
		return err
	}
	return nil
}

// isCancellation reports whether err is a context cancellation rather
// than a genuine stage failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// distributorKey extracts the cache-key identity of a distributor: its
// name, plus the adaptive parameters when the slicing technique backs
// it (two Sliced distributors with the same metric but different k
// factors must never share a plan).
func distributorKey(d deadline.Distributor) (string, slicing.Params) {
	if s, ok := d.(deadline.Sliced); ok {
		return s.Name(), s.Params
	}
	return d.Name(), slicing.Params{}
}
