// Plan serialization and durable cache snapshots.
//
// A Plan is a pure function of its Key, so a serialized plan is a valid
// substitute for a cold build anywhere the key matches: a process that
// re-imports its plans after a kill -9, or a fleet peer that pulls a
// neighbor's hot plans instead of rebuilding them. Two consumers share
// this format:
//
//   - cache snapshots: WriteSnapshot/ReadSnapshot persist a cache's
//     resident plans as JSON lines behind a fingerprinted header, with
//     the same torn-tail discipline as the experiment checkpoint
//     journal — a crash mid-write costs at most the last line;
//   - the fleet warm-fill protocol: EncodeKeyParam/DecodeKeyParam carry
//     a Key in a URL, and EncodePlan/DecodePlan carry a whole plan in a
//     /cache/fill body.
//
// DecodePlan re-derives the workload fingerprint and the estimate hash
// from the decoded content and refuses a plan whose recorded Key does
// not match: a corrupted or tampered entry can be skipped, never
// served.
package pipeline

import (
	"bufio"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/graphio"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
)

// SnapshotHeader fingerprints the snapshot format; a file whose first
// line carries a different header is refused rather than misread.
const SnapshotHeader = "pland-plan-snapshot/v1"

// KeyJSON is the serialized form of a Key. The two 64-bit hashes are
// hex strings because JSON numbers cannot carry a full uint64.
type KeyJSON struct {
	Workload    string     `json:"workload"`
	Estimates   string     `json:"estimates"`
	Distributor string     `json:"distributor"`
	Dispatcher  string     `json:"dispatcher"`
	Verifier    string     `json:"verifier,omitempty"`
	Params      ParamsJSON `json:"params"`
}

// ParamsJSON mirrors slicing.Params explicitly, so the on-disk format
// stays stable under refactoring of the in-memory type.
type ParamsJSON struct {
	CThres       rtime.Time `json:"cThres,omitempty"`
	CThresFactor float64    `json:"cThresFactor,omitempty"`
	KG           float64    `json:"kG,omitempty"`
	KL           float64    `json:"kL,omitempty"`
	KR           float64    `json:"kR,omitempty"`
	Mode         int        `json:"mode,omitempty"`
}

// EncodeKey converts a Key to its serialized form.
func EncodeKey(k Key) KeyJSON {
	return KeyJSON{
		Workload:    fmt.Sprintf("%016x", k.Workload),
		Estimates:   fmt.Sprintf("%016x", k.Estimates),
		Distributor: k.Distributor,
		Dispatcher:  k.Dispatcher,
		Verifier:    k.Verifier,
		Params: ParamsJSON{
			CThres:       k.Params.CThres,
			CThresFactor: k.Params.CThresFactor,
			KG:           k.Params.KG,
			KL:           k.Params.KL,
			KR:           k.Params.KR,
			Mode:         int(k.Params.Mode),
		},
	}
}

// DecodeKey rebuilds a Key from its serialized form.
func DecodeKey(in KeyJSON) (Key, error) {
	var k Key
	if _, err := fmt.Sscanf(in.Workload, "%016x", &k.Workload); err != nil {
		return Key{}, fmt.Errorf("pipeline: key workload hash %q: %w", in.Workload, err)
	}
	if _, err := fmt.Sscanf(in.Estimates, "%016x", &k.Estimates); err != nil {
		return Key{}, fmt.Errorf("pipeline: key estimate hash %q: %w", in.Estimates, err)
	}
	k.Distributor = in.Distributor
	k.Dispatcher = in.Dispatcher
	k.Verifier = in.Verifier
	k.Params = slicing.Params{
		CThres:       in.Params.CThres,
		CThresFactor: in.Params.CThresFactor,
		KG:           in.Params.KG,
		KL:           in.Params.KL,
		KR:           in.Params.KR,
		Mode:         slicing.Mode(in.Params.Mode),
	}
	return k, nil
}

// EncodeKeyParam renders a Key as a URL-safe token for the fleet's
// GET /cache/fill?key=... endpoint.
func EncodeKeyParam(k Key) string {
	raw, err := json.Marshal(EncodeKey(k))
	if err != nil {
		// KeyJSON is plain strings and numbers; Marshal cannot fail.
		panic(err)
	}
	return base64.RawURLEncoding.EncodeToString(raw)
}

// DecodeKeyParam parses an EncodeKeyParam token.
func DecodeKeyParam(s string) (Key, error) {
	raw, err := base64.RawURLEncoding.DecodeString(s)
	if err != nil {
		return Key{}, fmt.Errorf("pipeline: key param: %w", err)
	}
	var kj KeyJSON
	if err := json.Unmarshal(raw, &kj); err != nil {
		return Key{}, fmt.Errorf("pipeline: key param: %w", err)
	}
	return DecodeKey(kj)
}

// AssignmentJSON is the serialized window assignment.
type AssignmentJSON struct {
	Arrival         []rtime.Time `json:"arrival"`
	AbsDeadline     []rtime.Time `json:"absDeadline"`
	RelDeadline     []rtime.Time `json:"relDeadline"`
	Virtual         []rtime.Time `json:"virtual,omitempty"`
	Chains          [][]int      `json:"chains,omitempty"`
	ChainR          []float64    `json:"chainR,omitempty"`
	OverConstrained bool         `json:"overConstrained,omitempty"`
	Rounds          int          `json:"rounds,omitempty"`
	MetricName      string       `json:"metricName,omitempty"`
}

// ScheduleJSON is the serialized schedule.
type ScheduleJSON struct {
	Proc        []int        `json:"proc"`
	Start       []rtime.Time `json:"start"`
	Finish      []rtime.Time `json:"finish"`
	Feasible    bool         `json:"feasible"`
	Missed      []int        `json:"missed,omitempty"`
	MaxLateness rtime.Time   `json:"maxLateness"`
	Makespan    rtime.Time   `json:"makespan"`
	Order       []int        `json:"order,omitempty"`
}

// VerdictJSON is the serialized verdict.
type VerdictJSON struct {
	Feasible           bool `json:"feasible"`
	OverConstrained    bool `json:"overConstrained,omitempty"`
	ProvablyInfeasible bool `json:"provablyInfeasible,omitempty"`
	// Proof is the verifier's three-valued outcome as an int (VerifyNone
	// is omitted, keeping pre-verifier snapshots byte-identical).
	Proof       int        `json:"proof,omitempty"`
	MaxLateness rtime.Time `json:"maxLateness"`
	MinLaxity   rtime.Time `json:"minLaxity"`
}

// PlanJSON is the serialized form of one Plan: one snapshot line, or
// one /cache/fill payload. Stage wall times survive (a restored plan
// reports the planning cost of the build that produced it, exactly
// like a cache hit); allocation counters do not — they are profiling
// detail of a process that no longer exists.
type PlanJSON struct {
	Key        KeyJSON              `json:"key"`
	Workload   graphio.WorkloadJSON `json:"workload"`
	Estimates  []rtime.Time         `json:"estimates"`
	Assignment AssignmentJSON       `json:"assignment"`
	Schedule   ScheduleJSON         `json:"schedule"`
	Verdict    VerdictJSON          `json:"verdict"`
	// Quality is the plan's quality tag ("full" is omitted, keeping
	// pre-brownout snapshots byte-identical and readable both ways).
	Quality string `json:"quality,omitempty"`
	// Estimator names the estimator stage behind Estimates; omitted when
	// the estimates were supplied externally (and in older snapshots,
	// which decode with the same meaning).
	Estimator string `json:"estimator,omitempty"`
	// StageWallNS is estimate/slice/dispatch/verify wall time in ns.
	StageWallNS [4]int64 `json:"stageWallNS"`
}

// EncodePlan converts a Plan to its serialized form.
func EncodePlan(p *Plan) PlanJSON {
	pj := PlanJSON{
		Key:       EncodeKey(p.Key),
		Workload:  graphio.WorkloadJSON{Graph: graphio.EncodeGraph(p.Graph)},
		Estimates: p.Estimates,
		Assignment: AssignmentJSON{
			Arrival:         p.Assignment.Arrival,
			AbsDeadline:     p.Assignment.AbsDeadline,
			RelDeadline:     p.Assignment.RelDeadline,
			Virtual:         p.Assignment.Virtual,
			Chains:          p.Assignment.Chains,
			ChainR:          p.Assignment.ChainR,
			OverConstrained: p.Assignment.OverConstrained,
			Rounds:          p.Assignment.Rounds,
			MetricName:      p.Assignment.MetricName,
		},
		Schedule: ScheduleJSON{
			Feasible:    p.Schedule.Feasible,
			Missed:      p.Schedule.Missed,
			MaxLateness: p.Schedule.MaxLateness,
			Makespan:    p.Schedule.Makespan,
			Order:       p.Schedule.Order,
		},
		Verdict: VerdictJSON{
			Feasible:           p.Verdict.Feasible,
			OverConstrained:    p.Verdict.OverConstrained,
			ProvablyInfeasible: p.Verdict.ProvablyInfeasible,
			Proof:              int(p.Verdict.Proof),
			MaxLateness:        p.Verdict.MaxLateness,
			MinLaxity:          p.Verdict.MinLaxity,
		},
		StageWallNS: [4]int64{
			int64(p.Stats.Estimate.Wall),
			int64(p.Stats.Slice.Wall),
			int64(p.Stats.Dispatch.Wall),
			int64(p.Stats.Verify.Wall),
		},
	}
	if p.Quality != QualityFull {
		pj.Quality = p.Quality.String()
	}
	pj.Estimator = p.Estimator
	platform := graphio.EncodePlatform(p.Platform)
	pj.Workload.Platform = &platform
	for _, pl := range p.Schedule.Placements {
		pj.Schedule.Proc = append(pj.Schedule.Proc, pl.Proc)
		pj.Schedule.Start = append(pj.Schedule.Start, pl.Start)
		pj.Schedule.Finish = append(pj.Schedule.Finish, pl.Finish)
	}
	return pj
}

// DecodePlan rebuilds a Plan, verifying that the recorded Key matches
// the decoded content: the workload fingerprint and the estimate hash
// are recomputed from scratch, so a corrupted entry fails loudly here
// instead of serving a wrong plan under a right key.
func DecodePlan(in PlanJSON) (*Plan, error) {
	key, err := DecodeKey(in.Key)
	if err != nil {
		return nil, err
	}
	g, err := graphio.DecodeGraph(in.Workload.Graph)
	if err != nil {
		return nil, err
	}
	if in.Workload.Platform == nil {
		return nil, fmt.Errorf("pipeline: serialized plan carries no platform")
	}
	p, err := graphio.DecodePlatform(*in.Workload.Platform)
	if err != nil {
		return nil, err
	}
	if got := Fingerprint(g, p); got != key.Workload {
		return nil, fmt.Errorf("pipeline: plan workload fingerprint %016x does not match key %016x", got, key.Workload)
	}
	if got := hashTimes(in.Estimates); got != key.Estimates {
		return nil, fmt.Errorf("pipeline: plan estimate hash %016x does not match key %016x", got, key.Estimates)
	}
	n := g.NumTasks()
	if len(in.Estimates) != n || len(in.Assignment.Arrival) != n || len(in.Assignment.AbsDeadline) != n ||
		len(in.Assignment.RelDeadline) != n ||
		len(in.Schedule.Proc) != n || len(in.Schedule.Start) != n || len(in.Schedule.Finish) != n {
		return nil, fmt.Errorf("pipeline: serialized plan is ragged (%d tasks)", n)
	}
	s := &sched.Schedule{
		Placements:  make([]sched.Placement, n),
		Feasible:    in.Schedule.Feasible,
		Missed:      in.Schedule.Missed,
		MaxLateness: in.Schedule.MaxLateness,
		Makespan:    in.Schedule.Makespan,
		Order:       in.Schedule.Order,
	}
	for i := range s.Placements {
		s.Placements[i] = sched.Placement{
			Proc:   in.Schedule.Proc[i],
			Start:  in.Schedule.Start[i],
			Finish: in.Schedule.Finish[i],
		}
	}
	quality := QualityFull
	switch in.Quality {
	case "", QualityFull.String():
	case QualityDegraded.String():
		quality = QualityDegraded
	default:
		return nil, fmt.Errorf("pipeline: serialized plan carries unknown quality %q", in.Quality)
	}
	return &Plan{
		Key:       key,
		Graph:     g,
		Platform:  p,
		Estimates: in.Estimates,
		Quality:   quality,
		Estimator: in.Estimator,
		Assignment: &slicing.Assignment{
			Arrival:         in.Assignment.Arrival,
			AbsDeadline:     in.Assignment.AbsDeadline,
			RelDeadline:     in.Assignment.RelDeadline,
			Virtual:         in.Assignment.Virtual,
			Chains:          in.Assignment.Chains,
			ChainR:          in.Assignment.ChainR,
			OverConstrained: in.Assignment.OverConstrained,
			Rounds:          in.Assignment.Rounds,
			MetricName:      in.Assignment.MetricName,
		},
		Schedule: s,
		Verdict: Verdict{
			Feasible:           in.Verdict.Feasible,
			OverConstrained:    in.Verdict.OverConstrained,
			ProvablyInfeasible: in.Verdict.ProvablyInfeasible,
			Proof:              VerifyOutcome(in.Verdict.Proof),
			MaxLateness:        in.Verdict.MaxLateness,
			MinLaxity:          in.Verdict.MinLaxity,
		},
		Stats: PlanStats{
			Estimate: StageStats{Wall: time.Duration(in.StageWallNS[0])},
			Slice:    StageStats{Wall: time.Duration(in.StageWallNS[1])},
			Dispatch: StageStats{Wall: time.Duration(in.StageWallNS[2])},
			Verify:   StageStats{Wall: time.Duration(in.StageWallNS[3])},
		},
	}, nil
}

// snapshotHeaderLine is the first line of every snapshot file.
type snapshotHeaderLine struct {
	Snapshot string `json:"snapshot"`
}

// WriteSnapshot streams plans as a snapshot: the header line, then one
// PlanJSON per line, in the order given (Plans returns eviction order,
// so a straight sequential Import reproduces the cache's recency
// ranking). It returns the number of plans written.
func WriteSnapshot(w io.Writer, plans []*Plan) (int, error) {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(snapshotHeaderLine{Snapshot: SnapshotHeader})
	if err != nil {
		return 0, err
	}
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return 0, fmt.Errorf("pipeline: write snapshot header: %w", err)
	}
	n := 0
	for _, p := range plans {
		line, err := json.Marshal(EncodePlan(p))
		if err != nil {
			return n, fmt.Errorf("pipeline: marshal plan %v: %w", p.Key.Distributor, err)
		}
		if _, err := bw.Write(append(line, '\n')); err != nil {
			return n, fmt.Errorf("pipeline: write snapshot: %w", err)
		}
		n++
	}
	return n, bw.Flush()
}

// ErrSnapshotHeader reports a snapshot whose first line does not carry
// the expected format fingerprint.
var ErrSnapshotHeader = fmt.Errorf("pipeline: snapshot header is not %q", SnapshotHeader)

// ReadSnapshot parses a snapshot stream, tolerating a torn or corrupted
// tail: decoding stops at the first line that fails to parse or fails
// the DecodePlan integrity check, and every complete entry before it is
// returned. An unreadable or mismatched header is an error — that file
// is not a snapshot at all.
func ReadSnapshot(r io.Reader) ([]*Plan, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, ErrSnapshotHeader
	}
	var hdr snapshotHeaderLine
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil || hdr.Snapshot != SnapshotHeader {
		return nil, ErrSnapshotHeader
	}
	var plans []*Plan
	for sc.Scan() {
		var pj PlanJSON
		if err := json.Unmarshal(sc.Bytes(), &pj); err != nil {
			break // torn or corrupted tail; the prefix is intact
		}
		p, err := DecodePlan(pj)
		if err != nil {
			break
		}
		plans = append(plans, p)
	}
	return plans, nil
}

// SaveSnapshot atomically writes the cache's resident plans to path:
// the snapshot lands in a temp file in the same directory, is synced,
// and is renamed over the target, so a crash mid-save leaves the
// previous snapshot untouched. It returns the number of plans saved.
func SaveSnapshot(path string, c *Cache) (int, error) {
	plans := c.Plans()
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("pipeline: snapshot temp: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after the rename succeeds
	n, err := WriteSnapshot(tmp, plans)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return n, fmt.Errorf("pipeline: write snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return n, fmt.Errorf("pipeline: publish snapshot: %w", err)
	}
	return n, nil
}

// LoadSnapshot installs a snapshot's plans into the cache. A missing
// file is a cold start, not an error; a present file must at least
// carry the right header. It returns the number of plans installed.
func LoadSnapshot(path string, c *Cache) (int, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("pipeline: open snapshot: %w", err)
	}
	defer f.Close()
	plans, err := ReadSnapshot(f)
	if err != nil {
		return 0, err
	}
	for _, p := range plans {
		c.Install(p)
	}
	return len(plans), nil
}
