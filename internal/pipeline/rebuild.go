package pipeline

import (
	"context"
	"fmt"

	"repro/internal/deadline"
	"repro/internal/rtime"
)

// DeltaKind classifies what changed between a previous Plan and the
// workload to re-plan.
type DeltaKind int

const (
	// DeltaNone: same workload, same estimates — re-plan under this
	// Replanner's stage configuration (the brownout ladder's cheap
	// substitute builds reuse a full plan's estimates this way).
	DeltaNone DeltaKind = iota
	// DeltaEstimates replaces the whole estimate vector (the re-slicing
	// loop's inflation-corrected estimates).
	DeltaEstimates
	// DeltaTaskEstimate changes a single task's WCET estimate.
	DeltaTaskEstimate
	// DeltaWindows overrides some tasks' windows (fault-adjusted
	// corridors) and replays the rest of the previous assignment
	// verbatim, skipping the slicer entirely.
	DeltaWindows
	// DeltaWorkload changes the graph or platform; nothing from the
	// previous plan survives and the Replanner falls back to a full
	// build.
	DeltaWorkload
)

// String implements fmt.Stringer.
func (k DeltaKind) String() string {
	switch k {
	case DeltaNone:
		return "none"
	case DeltaEstimates:
		return "estimates"
	case DeltaTaskEstimate:
		return "task-estimate"
	case DeltaWindows:
		return "windows"
	case DeltaWorkload:
		return "workload"
	}
	return fmt.Sprintf("DeltaKind(%d)", int(k))
}

// Delta describes one workload change for Rebuild. Use the constructors;
// the zero value is DeltaNone.
type Delta struct {
	Kind DeltaKind

	// Estimates is the full replacement vector (DeltaEstimates).
	Estimates []rtime.Time

	// Task and Estimate are the single changed entry (DeltaTaskEstimate).
	Task     int
	Estimate rtime.Time

	// Arrival and AbsDeadline are per-task window overrides
	// (DeltaWindows); rtime.Unset entries keep the previous plan's
	// window. Either slice may be nil (no overrides on that edge).
	Arrival     []rtime.Time
	AbsDeadline []rtime.Time

	// Spec is the replacement workload (DeltaWorkload).
	Spec Spec
}

// EstimatesDelta declares a full estimate-vector replacement.
func EstimatesDelta(est []rtime.Time) Delta {
	return Delta{Kind: DeltaEstimates, Estimates: est}
}

// TaskEstimateDelta declares a single-task WCET change.
func TaskEstimateDelta(task int, est rtime.Time) Delta {
	return Delta{Kind: DeltaTaskEstimate, Task: task, Estimate: est}
}

// WindowsDelta declares per-task window overrides; Unset entries (or a
// nil slice) keep the previous plan's values.
func WindowsDelta(arrival, absDeadline []rtime.Time) Delta {
	return Delta{Kind: DeltaWindows, Arrival: arrival, AbsDeadline: absDeadline}
}

// WorkloadDelta declares a workload replacement; Rebuild degenerates to
// a full build of spec.
func WorkloadDelta(spec Spec) Delta {
	return Delta{Kind: DeltaWorkload, Spec: spec}
}

// WindowError reports a malformed window set produced by a DeltaWindows
// override: a window the overrides gave negative length, a precedence
// overlap the overrides introduced (a predecessor's deadline pushed past
// its successor's arrival when the previous plan had them ordered), or
// an overridden deadline past the workload's end-to-end horizon. It is
// returned unwrapped so callers can errors.As on it and surface the
// offending task instead of retrying the rebuild.
type WindowError struct {
	// Reason is "negative-length", "overlap", or "out-of-horizon".
	Reason string
	// Task is the offending task (the successor for overlap errors).
	Task int
	// Pred is the predecessor task for overlap errors, -1 otherwise.
	Pred int
	// Window is the offending merged window. For overlap errors it is
	// the predecessor's window, whose Deadline exceeds the successor's
	// arrival.
	Window rtime.Window
	// Horizon is the end-to-end deadline bound for out-of-horizon
	// errors, rtime.Unset otherwise.
	Horizon rtime.Time
}

// Error implements error.
func (e *WindowError) Error() string {
	switch e.Reason {
	case "negative-length":
		return fmt.Sprintf("pipeline: window override gives task %d negative-length window %v", e.Task, e.Window)
	case "overlap":
		return fmt.Sprintf("pipeline: window override makes predecessor %d (window %v) overlap successor %d", e.Pred, e.Window, e.Task)
	case "out-of-horizon":
		return fmt.Sprintf("pipeline: window override pushes task %d (window %v) past the end-to-end horizon %d", e.Task, e.Window, e.Horizon)
	}
	return fmt.Sprintf("pipeline: malformed window override (%s) on task %d", e.Reason, e.Task)
}

// validateWindows rejects malformed merged windows after a DeltaWindows
// override. Only damage the overrides introduce is an error: windows the
// previous plan already held are trusted (UD/ED-style distributions
// legitimately overlap across independent tasks), so overlap is checked
// along precedence arcs only and only where the previous plan had the
// pair ordered, and the length/horizon checks run on overridden tasks
// only.
func validateWindows(prev *Plan, delta Delta, arr, dl []rtime.Time) error {
	overridden := func(i int) bool {
		return (delta.Arrival != nil && delta.Arrival[i].IsSet()) ||
			(delta.AbsDeadline != nil && delta.AbsDeadline[i].IsSet())
	}
	horizon := rtime.Unset
	for _, t := range prev.Graph.Tasks() {
		if t.ETEDeadline.IsSet() && (!horizon.IsSet() || t.ETEDeadline > horizon) {
			horizon = t.ETEDeadline
		}
	}
	for i := range arr {
		if !overridden(i) {
			continue
		}
		w := rtime.Window{Arrival: arr[i], Deadline: dl[i]}
		if dl[i] < arr[i] {
			return &WindowError{Reason: "negative-length", Task: i, Pred: -1, Window: w, Horizon: rtime.Unset}
		}
		if horizon.IsSet() && dl[i] > horizon {
			return &WindowError{Reason: "out-of-horizon", Task: i, Pred: -1, Window: w, Horizon: horizon}
		}
	}
	pArr, pDl := prev.Assignment.Arrival, prev.Assignment.AbsDeadline
	for _, a := range prev.Graph.Arcs() {
		if dl[a.From] > arr[a.To] && pDl[a.From] <= pArr[a.To] {
			return &WindowError{
				Reason: "overlap", Task: a.To, Pred: a.From,
				Window:  rtime.Window{Arrival: arr[a.From], Deadline: dl[a.From]},
				Horizon: rtime.Unset,
			}
		}
	}
	return nil
}

// RebuildOutcome reports how a Rebuild was satisfied.
type RebuildOutcome int

const (
	// RebuildHit: the plan was already resident in the cache.
	RebuildHit RebuildOutcome = iota
	// RebuildIncremental: the plan was rebuilt through the Replanner's
	// retained scratch — prior work (workload fingerprint, estimator
	// output, surviving slicer candidates, warm buffers) was reused.
	RebuildIncremental
	// RebuildFull: the delta invalidated everything and a cold build of
	// the new workload ran instead.
	RebuildFull
)

// String implements fmt.Stringer.
func (o RebuildOutcome) String() string {
	switch o {
	case RebuildHit:
		return "hit"
	case RebuildIncremental:
		return "incremental"
	case RebuildFull:
		return "full"
	}
	return fmt.Sprintf("RebuildOutcome(%d)", int(o))
}

// Replanner rebuilds plans incrementally against a previous Plan. It
// owns a private retaining BuildScratch: across Rebuild calls on the
// same graph, the slicer keeps the candidate lists whose reachable
// tasks' virtual costs did not change, so an estimate-correction
// iteration re-runs only the invalidated critical-chain searches. The
// produced Plan is byte-identical to a cold Build of the mutated
// workload — retention moves work, never results (the workspace's
// exactness contract).
//
// A Replanner is NOT safe for concurrent use; it is cheap to create,
// so give each goroutine its own. The underlying Builder's cache and
// recorder stay shared and concurrency-safe.
type Replanner struct {
	b  *Builder
	sc *BuildScratch
}

// NewReplanner returns a Replanner over this builder's configuration.
func (b *Builder) NewReplanner() *Replanner {
	sc := NewBuildScratch()
	sc.Slicing.Retain = true
	return &Replanner{b: b, sc: sc}
}

// Rebuild re-plans prev's workload under the given delta; see
// RebuildContext.
func (rp *Replanner) Rebuild(prev *Plan, delta Delta) (*Plan, RebuildOutcome, error) {
	return rp.RebuildContext(context.Background(), prev, delta)
}

// RebuildContext produces the Plan a cold BuildContext of the mutated
// workload would produce — same fingerprint, assignment, schedule, and
// verdict — while reusing everything the delta provably left intact:
// the workload fingerprint, the previous estimator output (no estimator
// re-run for estimate and window deltas), the Replanner's warm build
// scratch, and — for estimate deltas on the same graph — the slicer's
// surviving candidate lists. Cache and recorder behavior match
// BuildContext's: hits coalesce and are reported as RebuildHit.
//
// DeltaWorkload (or a nil prev) falls back to a full build of the new
// workload; this is reported as RebuildFull.
func (rp *Replanner) RebuildContext(ctx context.Context, prev *Plan, delta Delta) (*Plan, RebuildOutcome, error) {
	b := rp.b
	if delta.Kind == DeltaWorkload {
		plan, err := b.BuildContext(ctx, delta.Spec)
		b.Recorder.recordRebuild(RebuildFull)
		return plan, RebuildFull, err
	}
	if prev == nil {
		return nil, RebuildFull, fmt.Errorf("pipeline: Rebuild needs a previous plan for %v deltas", delta.Kind)
	}
	if prev.Graph == nil || prev.Platform == nil {
		return nil, RebuildFull, fmt.Errorf("pipeline: previous plan carries no workload (snapshot stub?)")
	}
	n := prev.Graph.NumTasks()

	// Resolve the estimates and their hash without re-running the
	// estimator: the previous plan already carries its output.
	var est []rtime.Time
	var estHash uint64
	estName := ""
	switch delta.Kind {
	case DeltaNone:
		est = prev.Estimates
		estHash = prev.Key.Estimates
		estName = prev.Estimator
	case DeltaEstimates:
		if len(delta.Estimates) != n {
			return nil, RebuildFull, fmt.Errorf("pipeline: %d estimates for %d tasks", len(delta.Estimates), n)
		}
		est = append([]rtime.Time(nil), delta.Estimates...)
		estHash = hashTimes(est)
	case DeltaTaskEstimate:
		if delta.Task < 0 || delta.Task >= n {
			return nil, RebuildFull, fmt.Errorf("pipeline: task %d outside graph of %d", delta.Task, n)
		}
		est = append([]rtime.Time(nil), prev.Estimates...)
		est[delta.Task] = delta.Estimate
		estHash = hashTimes(est)
	case DeltaWindows:
		est = prev.Estimates
		estHash = prev.Key.Estimates
	default:
		return nil, RebuildFull, fmt.Errorf("pipeline: unknown delta kind %v", delta.Kind)
	}

	// Resolve the distributor: window deltas replay the previous
	// assignment's windows (with overrides) through deadline.Fixed and
	// skip the slicer; everything else re-slices under the builder's
	// configured distributor.
	var dist deadline.Distributor
	if delta.Kind == DeltaWindows {
		if prev.Assignment == nil {
			return nil, RebuildFull, fmt.Errorf("pipeline: previous plan carries no assignment")
		}
		if (delta.Arrival != nil && len(delta.Arrival) != n) ||
			(delta.AbsDeadline != nil && len(delta.AbsDeadline) != n) {
			return nil, RebuildFull, fmt.Errorf("pipeline: window overrides cover %d/%d tasks, graph has %d",
				len(delta.Arrival), len(delta.AbsDeadline), n)
		}
		arr := append([]rtime.Time(nil), prev.Assignment.Arrival...)
		dl := append([]rtime.Time(nil), prev.Assignment.AbsDeadline...)
		for i := 0; i < n; i++ {
			if delta.Arrival != nil && delta.Arrival[i].IsSet() {
				arr[i] = delta.Arrival[i]
			}
			if delta.AbsDeadline != nil && delta.AbsDeadline[i].IsSet() {
				dl[i] = delta.AbsDeadline[i]
			}
		}
		if err := validateWindows(prev, delta, arr, dl); err != nil {
			return nil, RebuildFull, err
		}
		dist = deadline.Fixed{Arrival: arr, AbsDeadline: dl}
	} else {
		dist = b.distributor()
	}

	distName, params := distributorKey(dist)
	key := Key{
		Workload:    prev.Key.Workload, // same graph and platform: reuse the fingerprint
		Estimates:   estHash,
		Distributor: distName,
		Params:      params,
		Dispatcher:  b.dispatcher().Name,
		Verifier:    b.Verifier.Name,
	}
	spec := Spec{Graph: prev.Graph, Platform: prev.Platform, Estimates: est}
	plan, hit, err := b.buildKeyed(ctx, spec, dist, key, est, estName, PlanStats{}, rp.sc)
	outcome := RebuildIncremental
	if hit {
		outcome = RebuildHit
	}
	if err == nil {
		b.Recorder.recordRebuild(outcome)
	}
	return plan, outcome, err
}
