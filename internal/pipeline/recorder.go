package pipeline

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"
)

// stageProbe captures the start of one stage execution.
type stageProbe struct {
	start  time.Time
	allocs bool
	m0     runtime.MemStats
}

func beginStage(countAllocs bool) stageProbe {
	p := stageProbe{allocs: countAllocs}
	if countAllocs {
		runtime.ReadMemStats(&p.m0)
	}
	p.start = time.Now()
	return p
}

func (p stageProbe) end() StageStats {
	s := StageStats{Wall: time.Since(p.start)}
	if p.allocs {
		var m1 runtime.MemStats
		runtime.ReadMemStats(&m1)
		s.Allocs = m1.Mallocs - p.m0.Mallocs
		s.Bytes = m1.TotalAlloc - p.m0.TotalAlloc
	}
	return s
}

// StageSummary aggregates one stage across builds.
type StageSummary struct {
	Wall   time.Duration
	Allocs uint64
	Bytes  uint64
}

func (s *StageSummary) add(st StageStats) {
	s.Wall += st.Wall
	s.Allocs += st.Allocs
	s.Bytes += st.Bytes
}

// Summary is a point-in-time aggregate view of a Recorder.
type Summary struct {
	// Builds counts completed (non-error) pipeline executions;
	// Hits/Errors count cache hits and stage errors.
	Builds, Hits, Errors uint64
	// Coalesced counts builds that joined another builder's in-flight
	// cold build of the same key instead of planning themselves (the
	// cache's singleflight layer).
	Coalesced uint64
	// Canceled counts builds abandoned at a stage boundary because
	// their context was done; cancellations are operational, so they
	// are kept apart from stage Errors.
	Canceled uint64
	// Rebuilds counts Replanner.Rebuild calls; RebuildHits the subset
	// answered from cache residency, RebuildFallbacks the subset that
	// degenerated to a full cold build (workload deltas). The remainder
	// ran incrementally over retained scratch.
	Rebuilds, RebuildHits, RebuildFallbacks uint64

	Estimate StageSummary
	Slice    StageSummary
	Dispatch StageSummary
	Verify   StageSummary
}

// Total returns the summed wall time across stages.
func (s Summary) Total() time.Duration {
	return s.Estimate.Wall + s.Slice.Wall + s.Dispatch.Wall + s.Verify.Wall
}

// Recorder accumulates pipeline instrumentation across builds; it is
// safe for concurrent use and may be shared by many Builders. All-wall
// timing is always on; allocation counting (runtime.ReadMemStats per
// stage, which is itself costly and counts process-wide) is opted into
// at construction.
type Recorder struct {
	mu     sync.Mutex
	allocs bool
	sum    Summary
}

// NewRecorder returns a Recorder; withAllocs additionally samples heap
// allocation counters around every stage.
func NewRecorder(withAllocs bool) *Recorder {
	return &Recorder{allocs: withAllocs}
}

func (r *Recorder) countsAllocs() bool { return r != nil && r.allocs }

func (r *Recorder) recordBuild(st PlanStats) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sum.Builds++
	r.sum.Estimate.add(st.Estimate)
	r.sum.Slice.add(st.Slice)
	r.sum.Dispatch.add(st.Dispatch)
	r.sum.Verify.add(st.Verify)
}

func (r *Recorder) recordHit() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sum.Hits++
	r.mu.Unlock()
}

func (r *Recorder) recordError() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sum.Errors++
	r.mu.Unlock()
}

func (r *Recorder) recordCoalesced() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sum.Coalesced++
	r.mu.Unlock()
}

func (r *Recorder) recordRebuild(o RebuildOutcome) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sum.Rebuilds++
	switch o {
	case RebuildHit:
		r.sum.RebuildHits++
	case RebuildFull:
		r.sum.RebuildFallbacks++
	}
	r.mu.Unlock()
}

func (r *Recorder) recordCanceled() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.sum.Canceled++
	r.mu.Unlock()
}

// Summary returns a snapshot of the aggregates.
func (r *Recorder) Summary() Summary {
	if r == nil {
		return Summary{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sum
}

// Format renders the summary as the `sweep -stats` table: one row per
// stage with total wall time, share, and (when counted) allocations.
func (s Summary) Format() string {
	type row struct {
		name string
		st   StageSummary
	}
	rows := []row{
		{"estimate", s.Estimate},
		{"slice", s.Slice},
		{"dispatch", s.Dispatch},
		{"verify", s.Verify},
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].st.Wall > rows[j].st.Wall })
	total := s.Total()
	var sb strings.Builder
	fmt.Fprintf(&sb, "pipeline: %d builds, %d cache hits, %d coalesced, %d errors, %v planning\n",
		s.Builds, s.Hits, s.Coalesced, s.Errors, total.Round(time.Microsecond))
	if s.Canceled > 0 {
		fmt.Fprintf(&sb, "  %d builds canceled at a stage boundary\n", s.Canceled)
	}
	if s.Rebuilds > 0 {
		fmt.Fprintf(&sb, "  %d rebuilds: %d cache hits, %d incremental, %d full fallbacks\n",
			s.Rebuilds, s.RebuildHits, s.Rebuilds-s.RebuildHits-s.RebuildFallbacks, s.RebuildFallbacks)
	}
	for _, r := range rows {
		if r.st.Wall == 0 && r.st.Allocs == 0 {
			continue
		}
		share := 0.0
		if total > 0 {
			share = 100 * float64(r.st.Wall) / float64(total)
		}
		fmt.Fprintf(&sb, "  %-8s %10v  %5.1f%%", r.name, r.st.Wall.Round(time.Microsecond), share)
		if r.st.Allocs > 0 {
			fmt.Fprintf(&sb, "  %d allocs, %s", r.st.Allocs, formatBytes(r.st.Bytes))
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func formatBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%d B", b)
}
