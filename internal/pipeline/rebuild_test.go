package pipeline

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/deadline"
	"repro/internal/rtime"
	"repro/internal/slicing"
)

// planEqual compares the replanning-relevant plan content: key,
// estimates, assignment, schedule, and verdict. Stats (timing) and the
// Estimator provenance string are excluded — a Rebuild legitimately
// remembers the estimator name where a cold build with supplied
// estimates cannot.
func rebuildPlanEqual(t *testing.T, context string, want, got *Plan) {
	t.Helper()
	if want.Key != got.Key {
		t.Fatalf("%s: key diverged\nwant %+v\ngot  %+v", context, want.Key, got.Key)
	}
	if !reflect.DeepEqual(want.Estimates, got.Estimates) {
		t.Fatalf("%s: estimates diverged", context)
	}
	if !reflect.DeepEqual(want.Assignment, got.Assignment) {
		t.Fatalf("%s: assignment diverged\nwant %+v\ngot  %+v", context, want.Assignment, got.Assignment)
	}
	if !reflect.DeepEqual(want.Schedule, got.Schedule) {
		t.Fatalf("%s: schedule diverged\nwant %+v\ngot  %+v", context, want.Schedule, got.Schedule)
	}
	if want.Verdict != got.Verdict {
		t.Fatalf("%s: verdict diverged\nwant %+v\ngot  %+v", context, want.Verdict, got.Verdict)
	}
	if want.Quality != got.Quality {
		t.Fatalf("%s: quality diverged", context)
	}
}

// The incremental-replanning exactness property: across arbitrary
// sequences of estimate, single-task, and window deltas threaded through
// ONE Replanner (whose retained scratch accumulates state), every
// Rebuild must be plan-identical to a cold Build of the mutated
// workload by a fresh builder.
func TestRebuildMatchesColdBuild(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := workload(t, seed)
		n := w.Graph.NumTasks()

		b := &Builder{Verifier: FeasVerifier()}
		rp := b.NewReplanner()
		prev, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
		if err != nil {
			t.Fatal(err)
		}
		if prev.Estimator == "" {
			t.Fatalf("seed %d: cold build with estimator stage left Plan.Estimator empty", seed)
		}

		cur := append([]rtime.Time(nil), prev.Estimates...)
		for step := 0; step < 12; step++ {
			var delta Delta
			kind := rng.Intn(3)
			switch kind {
			case 0: // full-vector correction (re-slicing loop shape)
				for i := range cur {
					if rng.Intn(4) == 0 {
						cur[i] += rtime.Time(1 + rng.Intn(8))
					}
				}
				delta = EstimatesDelta(cur)
			case 1: // single-task WCET bump
				i := rng.Intn(n)
				cur[i] += rtime.Time(1 + rng.Intn(10))
				delta = TaskEstimateDelta(i, cur[i])
			case 2: // fault-adjusted window overrides
				arr := make([]rtime.Time, n)
				dl := make([]rtime.Time, n)
				for i := range arr {
					arr[i], dl[i] = rtime.Unset, rtime.Unset
				}
				for k := 0; k < 1+rng.Intn(3); k++ {
					i := rng.Intn(n)
					dl[i] = prev.Assignment.AbsDeadline[i] - rtime.Time(rng.Intn(5))
				}
				delta = WindowsDelta(arr, dl)
			}

			got, outcome, err := rp.RebuildContext(t.Context(), prev, delta)
			if err != nil {
				t.Fatalf("seed %d step %d (%v): %v", seed, step, delta.Kind, err)
			}
			if outcome != RebuildIncremental {
				t.Fatalf("seed %d step %d: outcome %v, want incremental (no cache configured)", seed, step, outcome)
			}

			// Cold comparator with a fresh builder: same config, no
			// retained state.
			fresh := &Builder{Verifier: FeasVerifier()}
			var want *Plan
			if delta.Kind == DeltaWindows {
				arr := append([]rtime.Time(nil), prev.Assignment.Arrival...)
				dl := append([]rtime.Time(nil), prev.Assignment.AbsDeadline...)
				for i := 0; i < n; i++ {
					if delta.AbsDeadline[i].IsSet() {
						dl[i] = delta.AbsDeadline[i]
					}
				}
				fresh.Distributor = deadline.Fixed{Arrival: arr, AbsDeadline: dl}
				want, err = fresh.Build(Spec{Graph: w.Graph, Platform: w.Platform, Estimates: prev.Estimates})
			} else {
				want, err = fresh.Build(Spec{Graph: w.Graph, Platform: w.Platform, Estimates: cur})
			}
			if err != nil {
				t.Fatalf("seed %d step %d cold comparator: %v", seed, step, err)
			}
			rebuildPlanEqual(t, delta.Kind.String(), want, got)

			// Estimate deltas advance the baseline; window deltas are
			// one-shot probes off the same baseline.
			if kind != 2 {
				prev = got
			}
		}
	}
}

// Malformed window-override sets must be rejected with a typed
// *WindowError before any deadline.Fixed replay runs: negative-length
// windows, precedence overlaps the overrides introduce, and deadlines
// pushed past the end-to-end horizon. Overlaps the previous plan
// already held stay legal (UD/ED-style windows overlap by design), so
// the test only forges overlaps across previously ordered arcs.
func TestRebuildRejectsMalformedWindows(t *testing.T) {
	w := workload(t, 11)
	n := w.Graph.NumTasks()
	b := &Builder{Verifier: FeasVerifier()}
	rp := b.NewReplanner()
	prev, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}
	unset := func() ([]rtime.Time, []rtime.Time) {
		arr := make([]rtime.Time, n)
		dl := make([]rtime.Time, n)
		for i := range arr {
			arr[i], dl[i] = rtime.Unset, rtime.Unset
		}
		return arr, dl
	}
	expectWindowError := func(t *testing.T, delta Delta, reason string) *WindowError {
		t.Helper()
		_, _, err := rp.Rebuild(prev, delta)
		var we *WindowError
		if !errors.As(err, &we) {
			t.Fatalf("err = %v, want *WindowError", err)
		}
		if we.Reason != reason {
			t.Fatalf("reason = %q (%v), want %q", we.Reason, we, reason)
		}
		return we
	}

	t.Run("negative-length", func(t *testing.T) {
		arr, dl := unset()
		arr[0], dl[0] = 10, 9
		we := expectWindowError(t, WindowsDelta(arr, dl), "negative-length")
		if we.Task != 0 {
			t.Fatalf("task = %d, want 0", we.Task)
		}
	})

	t.Run("overlap", func(t *testing.T) {
		// Pick an arc whose windows the previous plan keeps ordered and
		// push the predecessor's deadline past the successor's arrival.
		pArr, pDl := prev.Assignment.Arrival, prev.Assignment.AbsDeadline
		from, to := -1, -1
		for _, a := range w.Graph.Arcs() {
			if pDl[a.From] <= pArr[a.To] {
				from, to = a.From, a.To
				break
			}
		}
		if from < 0 {
			t.Skip("workload has no ordered arc to forge an overlap on")
		}
		arr, dl := unset()
		dl[from] = pArr[to] + 1
		we := expectWindowError(t, WindowsDelta(arr, dl), "overlap")
		if we.Pred != from || we.Task != to {
			t.Fatalf("arc = %d->%d, want %d->%d", we.Pred, we.Task, from, to)
		}
	})

	t.Run("out-of-horizon", func(t *testing.T) {
		horizon := rtime.Unset
		for _, tk := range w.Graph.Tasks() {
			if tk.ETEDeadline.IsSet() && (!horizon.IsSet() || tk.ETEDeadline > horizon) {
				horizon = tk.ETEDeadline
			}
		}
		if !horizon.IsSet() {
			t.Skip("workload sets no end-to-end deadline")
		}
		arr, dl := unset()
		dl[n-1] = horizon + 100
		we := expectWindowError(t, WindowsDelta(arr, dl), "out-of-horizon")
		if we.Horizon != horizon {
			t.Fatalf("horizon = %d, want %d", we.Horizon, horizon)
		}
	})

	// Sanity: the same delta shapes with in-bounds values still rebuild.
	arr, dl := unset()
	dl[0] = prev.Assignment.AbsDeadline[0] - 1
	if _, _, err := rp.Rebuild(prev, WindowsDelta(arr, dl)); err != nil {
		t.Fatalf("well-formed override rejected: %v", err)
	}
}

// DeltaNone re-plans the same workload and estimates under the
// Replanner's own (possibly cheaper) configuration — the brownout
// substitute-build shape — and must match that configuration's cold
// build. DeltaWorkload must fall back to a plain full build.
func TestRebuildConfigSwitchAndFallback(t *testing.T) {
	w := workload(t, 42)
	full := &Builder{Verifier: FeasVerifier()}
	prev, err := full.Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}

	cheap := &Builder{
		Distributor: deadline.Sliced{Metric: slicing.NORM(), Params: slicing.CalibratedParams()},
		Quality:     QualityDegraded,
	}
	got, outcome, err := cheap.NewReplanner().Rebuild(prev, Delta{})
	if err != nil {
		t.Fatal(err)
	}
	if outcome != RebuildIncremental {
		t.Fatalf("outcome %v, want incremental", outcome)
	}
	if got.Estimator != prev.Estimator {
		t.Fatalf("DeltaNone lost estimator provenance: %q vs %q", got.Estimator, prev.Estimator)
	}
	want, err := (&Builder{
		Distributor: deadline.Sliced{Metric: slicing.NORM(), Params: slicing.CalibratedParams()},
		Quality:     QualityDegraded,
	}).Build(Spec{Graph: w.Graph, Platform: w.Platform, Estimates: prev.Estimates})
	if err != nil {
		t.Fatal(err)
	}
	rebuildPlanEqual(t, "delta-none", want, got)

	// Workload delta: full rebuild of the new workload.
	w2 := workload(t, 43)
	rp := full.NewReplanner()
	got, outcome, err = rp.Rebuild(prev, WorkloadDelta(Spec{Graph: w2.Graph, Platform: w2.Platform}))
	if err != nil {
		t.Fatal(err)
	}
	if outcome != RebuildFull {
		t.Fatalf("outcome %v, want full", outcome)
	}
	want, err = (&Builder{Verifier: FeasVerifier()}).Build(Spec{Graph: w2.Graph, Platform: w2.Platform})
	if err != nil {
		t.Fatal(err)
	}
	rebuildPlanEqual(t, "workload-delta", want, got)
}

// With a cache configured, rebuilding toward estimates that were already
// planned must be answered from residency and reported as a hit; the
// recorder's rebuild counters must add up.
func TestRebuildCacheHitAndCounters(t *testing.T) {
	w := workload(t, 7)
	rec := NewRecorder(false)
	b := &Builder{Cache: NewCache(8), Recorder: rec}
	rp := b.NewReplanner()
	prev, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
	if err != nil {
		t.Fatal(err)
	}

	bumped := append([]rtime.Time(nil), prev.Estimates...)
	bumped[0] += 3
	p1, out1, err := rp.Rebuild(prev, EstimatesDelta(bumped))
	if err != nil || out1 != RebuildIncremental {
		t.Fatalf("first rebuild: outcome %v err %v", out1, err)
	}
	if _, out2, err := rp.Rebuild(prev, EstimatesDelta(bumped)); err != nil || out2 != RebuildHit {
		t.Fatalf("repeat rebuild: outcome %v err %v, want hit", out2, err)
	}
	// Rebuilding back to the original estimates hits the cold build's
	// cache entry.
	if _, out3, err := rp.Rebuild(p1, EstimatesDelta(prev.Estimates)); err != nil || out3 != RebuildHit {
		t.Fatalf("revert rebuild: outcome %v err %v, want hit", out3, err)
	}

	s := rec.Summary()
	if s.Rebuilds != 3 || s.RebuildHits != 2 || s.RebuildFallbacks != 0 {
		t.Fatalf("rebuild counters = %d/%d/%d, want 3/2/0", s.Rebuilds, s.RebuildHits, s.RebuildFallbacks)
	}
}

// Cached plans are immutable; pooled build scratch must never leak into
// them. Snapshot every cached plan's serialized bytes, churn concurrent
// pooled builds and rebuilds over the same builder, and verify the
// snapshots byte-for-byte. Run with -race, this also proves the pool
// hand-off is clean.
func TestPooledBuildsNeverMutateCachedPlans(t *testing.T) {
	b := &Builder{Cache: NewCache(64), Verifier: FeasVerifier()}

	// Phase 1: populate and snapshot.
	const kept = 6
	plans := make([]*Plan, kept)
	snaps := make([][]byte, kept)
	for i := 0; i < kept; i++ {
		w := workload(t, int64(100+i))
		p, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform})
		if err != nil {
			t.Fatal(err)
		}
		raw, err := json.Marshal(EncodePlan(p))
		if err != nil {
			t.Fatal(err)
		}
		plans[i], snaps[i] = p, raw
	}

	// Phase 2: churn. Concurrent cold builds (pooled scratch) and
	// replanners (retained scratch) over fresh workloads and over the
	// kept plans' own graphs.
	var wg sync.WaitGroup
	for gid := 0; gid < 4; gid++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			rp := b.NewReplanner()
			for i := 0; i < 20; i++ {
				w := workload(t, int64(200+gid*100+i))
				if _, err := b.Build(Spec{Graph: w.Graph, Platform: w.Platform}); err != nil {
					t.Error(err)
					return
				}
				prev := plans[(gid+i)%kept]
				bumped := append([]rtime.Time(nil), prev.Estimates...)
				bumped[i%len(bumped)] += rtime.Time(1 + i)
				if _, _, err := rp.Rebuild(prev, EstimatesDelta(bumped)); err != nil {
					t.Error(err)
					return
				}
			}
		}(gid)
	}
	wg.Wait()

	// Phase 3: the snapshots must be untouched.
	for i, p := range plans {
		raw, err := json.Marshal(EncodePlan(p))
		if err != nil {
			t.Fatal(err)
		}
		if string(raw) != string(snaps[i]) {
			t.Fatalf("cached plan %d mutated by later pooled builds", i)
		}
	}
}
