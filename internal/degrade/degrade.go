// Package degrade implements graceful degradation for mixed-criticality
// task graphs, in the imprecise-computation tradition: every task is
// either Mandatory (its deadline must hold in every operating mode) or
// Optional (it adds value when it completes in time but may be shed
// under overload).
//
// A degradation Policy turns one task graph into a ladder of operating
// Modes: level 0 is the full application, each higher level sheds (or
// shrinks) more optional work, and the mandatory subgraph survives at
// every level by construction. Mode graphs are real reduced task graphs
// — the deadline-distribution step re-slices their end-to-end deadlines
// and the dispatcher re-verifies them — so a mode is not a scheduling
// heuristic but a full re-planned application.
//
// The Controller is the online half: it watches the degradation
// accounting of the fault-injected executor (package sim) frame by
// frame and moves along the mode ladder — escalating on overload,
// de-escalating only after a sustained clean streak, with bounded,
// backed-off re-admission probes so a marginal system cannot oscillate.
// It never proposes a mode that abandons the mandatory set, because no
// such mode exists.
package degrade

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Policy selects how optional work is degraded as the level rises.
type Policy int

const (
	// None builds only the full-application mode: degradation disabled.
	// With None the study machinery reduces exactly to the plain
	// fault-injection study, which anchors the zero-degradation identity
	// property.
	None Policy = iota
	// ShedLowestValue sheds sheddable optional tasks cheapest-first (by
	// value weight), maximizing retained value per shed task.
	ShedLowestValue
	// ShedLargestParallelSet sheds sheddable optional tasks with the
	// largest parallel sets first: tasks that compete with the most
	// other work are the ones whose removal relieves contention the
	// most (the same |Ψᵢ| signal the ADAPT-L metric prices).
	ShedLargestParallelSet
	// ProportionalBudget keeps every task but shrinks the execution
	// budget of all optional tasks proportionally — the milestone-style
	// imprecise-computation model where optional parts refine a result
	// and can be cut anywhere. The final level sheds the sheddable
	// tasks entirely.
	ProportionalBudget
)

// Policies lists the active degradation policies in presentation order.
var Policies = []Policy{ShedLowestValue, ShedLargestParallelSet, ProportionalBudget}

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case None:
		return "none"
	case ShedLowestValue:
		return "shed-value"
	case ShedLargestParallelSet:
		return "shed-pset"
	case ProportionalBudget:
		return "budget"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// DefaultLevels is the mode-ladder depth used when Options.Levels is 0.
const DefaultLevels = 3

// Options configures mode-ladder construction.
type Options struct {
	// Policy selects the degradation policy (None disables shedding).
	Policy Policy
	// Levels is the number of degraded levels above the full mode
	// (default DefaultLevels). Level ℓ targets shedding a value
	// fraction ℓ/Levels of the total sheddable value.
	Levels int
}

// Mode is one operating point of the degradation ladder.
type Mode struct {
	// Level is the mode's position on the ladder (0 = full application).
	Level int
	// Graph is the mode's task graph: the original graph at level 0
	// (same pointer), a reduced frozen copy above.
	Graph *taskgraph.Graph
	// New2Old maps the mode graph's task IDs back to the original
	// graph's; Old2New is the inverse with −1 for shed tasks.
	New2Old, Old2New []int
	// Quality is the value fraction the mode retains, in (0, 1]: the
	// value-weight sum of its (unshrunk) tasks over the original total.
	// Strictly decreasing up the ladder.
	Quality float64
	// Shed counts original tasks absent from this mode.
	Shed int
	// BudgetFactor is the execution-budget scale applied to optional
	// tasks (1 except under ProportionalBudget).
	BudgetFactor float64
}

// Modes builds the degradation ladder for g under the options: modes[0]
// is always the full application, and each subsequent mode sheds or
// shrinks strictly more optional value than the one before (levels that
// would change nothing are dropped, so the ladder can be shorter than
// Options.Levels+1). The graph must be frozen. Mandatory tasks appear
// in every mode, and every kept precedence constraint of the original
// graph is preserved; outputs exposed by shedding inherit the tightest
// end-to-end deadline of the original outputs they used to feed, so
// every mode re-slices cleanly.
func Modes(g *taskgraph.Graph, opt Options) ([]*Mode, error) {
	levels := opt.Levels
	if levels == 0 {
		levels = DefaultLevels
	}
	if levels < 0 {
		return nil, fmt.Errorf("degrade: Levels %d is negative", levels)
	}
	switch opt.Policy {
	case None, ShedLowestValue, ShedLargestParallelSet, ProportionalBudget:
	default:
		return nil, fmt.Errorf("degrade: unknown policy %v", opt.Policy)
	}

	n := g.NumTasks()
	ident := make([]int, n)
	for i := range ident {
		ident[i] = i
	}
	modes := []*Mode{{
		Level: 0, Graph: g,
		New2Old: ident, Old2New: append([]int(nil), ident...),
		Quality: 1, BudgetFactor: 1,
	}}
	if opt.Policy == None {
		return modes, nil
	}

	var totalValue, optValue float64
	for _, t := range g.Tasks() {
		v := t.ValueWeight()
		totalValue += v
		if t.Criticality == taskgraph.Optional {
			optValue += v
		}
	}
	if optValue == 0 {
		return modes, nil // all-mandatory: nothing to degrade
	}

	if opt.Policy == ProportionalBudget {
		return budgetModes(g, modes, levels, totalValue, optValue)
	}
	return shedModes(g, modes, opt.Policy, levels, totalValue)
}

// shedModes builds the ladder for the shedding policies: a single
// policy-ordered walk over the sheddable tasks, cut into nested
// cumulative shed sets targeting value fractions ℓ/levels.
func shedModes(g *taskgraph.Graph, modes []*Mode, pol Policy, levels int,
	totalValue float64) ([]*Mode, error) {

	sheddable := g.Sheddable()
	var cands []int
	var shedValue float64
	for id, ok := range sheddable {
		if ok {
			cands = append(cands, id)
			shedValue += g.Task(id).ValueWeight()
		}
	}
	if len(cands) == 0 {
		return modes, nil
	}
	sort.SliceStable(cands, func(a, b int) bool {
		ta, tb := g.Task(cands[a]), g.Task(cands[b])
		switch pol {
		case ShedLargestParallelSet:
			pa, pb := g.ParallelSetSize(cands[a]), g.ParallelSetSize(cands[b])
			if pa != pb {
				return pa > pb
			}
		default: // ShedLowestValue
			if ta.ValueWeight() != tb.ValueWeight() {
				return ta.ValueWeight() < tb.ValueWeight()
			}
		}
		return cands[a] < cands[b]
	})

	inherited := g.InheritedETE()
	inShed := make([]bool, g.NumTasks())
	var accum float64
	ci := 0
	for l := 1; l <= levels; l++ {
		target := shedValue * float64(l) / float64(levels)
		for accum < target*(1-1e-9) && ci < len(cands) {
			c := cands[ci]
			ci++
			if inShed[c] {
				continue
			}
			// Shed c together with its (all sheddable) descendants, so
			// the shed set stays closed.
			accum += shedTree(g, c, inShed)
		}
		m, err := shedMode(g, inShed, inherited, len(modes), (totalValue-accum)/totalValue)
		if err != nil {
			return nil, err
		}
		if m == nil || m.Shed == modes[len(modes)-1].Shed {
			continue // no progress at this level (or nothing would remain)
		}
		modes = append(modes, m)
	}
	return modes, nil
}

// shedTree marks id and its not-yet-shed descendants shed, returning the
// value weight newly removed.
func shedTree(g *taskgraph.Graph, id int, inShed []bool) float64 {
	if inShed[id] {
		return 0
	}
	inShed[id] = true
	v := g.Task(id).ValueWeight()
	for _, s := range g.Succs(id) {
		v += shedTree(g, s, inShed)
	}
	return v
}

// shedMode materializes one reduced mode from a shed mask, or nil when
// nothing would remain.
func shedMode(g *taskgraph.Graph, inShed []bool, inherited []rtime.Time,
	level int, quality float64) (*Mode, error) {

	keep := make([]bool, len(inShed))
	kept := 0
	for i, s := range inShed {
		keep[i] = !s
		if keep[i] {
			kept++
		}
	}
	if kept == 0 {
		return nil, nil
	}
	ng, old2new, new2old, err := g.Induce(keep)
	if err != nil {
		return nil, err
	}
	if err := inheritDeadlines(g, ng, keep, old2new, inherited); err != nil {
		return nil, err
	}
	if err := ng.Freeze(); err != nil {
		return nil, err
	}
	return &Mode{
		Level: level, Graph: ng,
		New2Old: new2old, Old2New: old2new,
		Quality: quality, Shed: len(inShed) - kept, BudgetFactor: 1,
	}, nil
}

// inheritDeadlines assigns end-to-end deadlines to tasks that shedding
// turned into outputs: a kept task with no kept successor and no
// deadline of its own inherits the tightest deadline among the original
// outputs it reached, so the reduced graph's deadline distribution is
// never looser than any constraint the task was originally under.
func inheritDeadlines(g *taskgraph.Graph, ng *taskgraph.Graph, keep []bool,
	old2new []int, inherited []rtime.Time) error {

	for oi, k := range keep {
		if !k {
			continue
		}
		keptSucc := false
		for _, s := range g.Succs(oi) {
			if keep[s] {
				keptSucc = true
				break
			}
		}
		if keptSucc || g.Task(oi).ETEDeadline.IsSet() {
			continue
		}
		d := inherited[oi]
		if !d.IsSet() {
			return fmt.Errorf("degrade: task %d exposed as output but no reachable original output has a deadline", oi)
		}
		ng.Task(old2new[oi]).ETEDeadline = d
	}
	return nil
}

// budgetModes builds the ProportionalBudget ladder: level ℓ < levels
// scales every optional task's execution budget by 1−ℓ/levels; the
// final level sheds the sheddable tasks outright and clamps any
// remaining (unsheddable) optional task to a one-unit budget.
func budgetModes(g *taskgraph.Graph, modes []*Mode, levels int,
	totalValue, optValue float64) ([]*Mode, error) {

	n := g.NumTasks()
	keepAll := make([]bool, n)
	for i := range keepAll {
		keepAll[i] = true
	}
	for l := 1; l < levels; l++ {
		factor := 1 - float64(l)/float64(levels)
		ng, old2new, new2old, err := g.Induce(keepAll)
		if err != nil {
			return nil, err
		}
		scaleOptional(ng, factor)
		if err := ng.Freeze(); err != nil {
			return nil, err
		}
		modes = append(modes, &Mode{
			Level: len(modes), Graph: ng,
			New2Old: new2old, Old2New: old2new,
			Quality:      (totalValue - optValue + factor*optValue) / totalValue,
			BudgetFactor: factor,
		})
	}
	// Final level: the sheddable tasks go entirely; optional tasks that
	// cannot be shed (they feed mandatory work) keep a one-unit budget.
	inShed := g.Sheddable()
	inherited := g.InheritedETE()
	m, err := shedMode(g, inShed, inherited, len(modes), (totalValue-optValue)/totalValue)
	if err != nil {
		return nil, err
	}
	if m != nil {
		scaleOptional(m.Graph, 0)
		m.BudgetFactor = 0
		modes = append(modes, m)
	}
	return modes, nil
}

// scaleOptional rescales the per-class execution budgets of every
// optional task of a graph copy by factor, never below one unit. The
// frozen-graph invariants (topology, reachability) never read WCET, so
// scaling is safe both before Freeze (the interior budget levels) and
// after (the final shed level returned frozen by shedMode).
func scaleOptional(ng *taskgraph.Graph, factor float64) {
	for _, t := range ng.Tasks() {
		if t.Criticality != taskgraph.Optional {
			continue
		}
		for k, c := range t.WCET {
			if !c.IsSet() {
				continue
			}
			v := rtime.Time(math.Ceil(factor * float64(c)))
			if v < 1 {
				v = 1
			}
			t.WCET[k] = v
		}
	}
}
