package degrade

import (
	"testing"

	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

// mixed builds the reference mixed-criticality graph:
//
//	A(m) → B(m) → E(o, 0.5, ETE 90)
//	A(m) → C(o, 2) → D(o, 2, ETE 100)
//
// Values: A=B=1 (default), C=D=2, E=0.5; total 6.5, sheddable 4.5.
func mixed(t *testing.T) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("A", c1(10), 0)
	b := g.MustAddTask("B", c1(10), 0)
	cc := g.MustAddTask("C", c1(10), 0)
	d := g.MustAddTask("D", c1(10), 0)
	e := g.MustAddTask("E", c1(10), 0)
	cc.Criticality, cc.Value = taskgraph.Optional, 2
	d.Criticality, d.Value = taskgraph.Optional, 2
	e.Criticality, e.Value = taskgraph.Optional, 0.5
	d.ETEDeadline = 100
	e.ETEDeadline = 90
	g.MustAddArc(a.ID, b.ID, 1)
	g.MustAddArc(a.ID, cc.ID, 1)
	g.MustAddArc(cc.ID, d.ID, 1)
	g.MustAddArc(b.ID, e.ID, 1)
	g.MustFreeze()
	return g
}

// checkLadder asserts the invariants every mode ladder must satisfy.
func checkLadder(t *testing.T, g *taskgraph.Graph, modes []*Mode) {
	t.Helper()
	if len(modes) == 0 || modes[0].Graph != g || modes[0].Quality != 1 || modes[0].Shed != 0 {
		t.Fatalf("mode 0 is not the full application: %+v", modes[0])
	}
	for l, m := range modes {
		if m.Level != l {
			t.Errorf("modes[%d].Level = %d", l, m.Level)
		}
		if l > 0 && m.Quality >= modes[l-1].Quality {
			t.Errorf("quality not strictly decreasing at level %d: %v then %v",
				l, modes[l-1].Quality, m.Quality)
		}
		if !m.Graph.Frozen() {
			t.Fatalf("mode %d graph not frozen", l)
		}
		// Every mandatory task survives in every mode.
		for _, ot := range g.Tasks() {
			if ot.Criticality == taskgraph.Mandatory && m.Old2New[ot.ID] < 0 {
				t.Errorf("mode %d shed mandatory task %d", l, ot.ID)
			}
		}
		// Every mode output carries an end-to-end deadline, so the mode
		// re-slices cleanly.
		for _, out := range m.Graph.Outputs() {
			if !m.Graph.Task(out).ETEDeadline.IsSet() {
				t.Errorf("mode %d output %d has no deadline", l, out)
			}
		}
		// Map consistency.
		for ni, oi := range m.New2Old {
			if m.Old2New[oi] != ni {
				t.Errorf("mode %d map mismatch at new task %d", l, ni)
			}
		}
	}
}

func TestModesNone(t *testing.T) {
	g := mixed(t)
	modes, err := Modes(g, Options{Policy: None})
	if err != nil {
		t.Fatal(err)
	}
	if len(modes) != 1 {
		t.Fatalf("None built %d modes, want 1", len(modes))
	}
	checkLadder(t, g, modes)
}

func TestModesAllMandatory(t *testing.T) {
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("A", c1(10), 0)
	b := g.MustAddTask("B", c1(10), 0)
	b.ETEDeadline = 50
	g.MustAddArc(a.ID, b.ID, 1)
	g.MustFreeze()
	for _, pol := range Policies {
		modes, err := Modes(g, Options{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		if len(modes) != 1 {
			t.Errorf("%v on all-mandatory graph built %d modes, want 1", pol, len(modes))
		}
	}
}

func TestModesShedLowestValue(t *testing.T) {
	g := mixed(t)
	modes, err := Modes(g, Options{Policy: ShedLowestValue, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkLadder(t, g, modes)
	// Cheapest-first: E (0.5) goes first, then the C subtree drags D
	// along; every later level target is already met, so one shed level.
	if len(modes) != 2 {
		t.Fatalf("built %d modes, want 2", len(modes))
	}
	m := modes[1]
	if m.Shed != 3 {
		t.Errorf("level 1 shed %d tasks, want 3", m.Shed)
	}
	// B lost its only successor E and must inherit E's deadline.
	nb := m.Old2New[1]
	if d := m.Graph.Task(nb).ETEDeadline; d != 90 {
		t.Errorf("exposed output B inherited deadline %v, want 90", d)
	}
}

func TestModesShedLargestParallelSet(t *testing.T) {
	g := mixed(t)
	modes, err := Modes(g, Options{Policy: ShedLargestParallelSet, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkLadder(t, g, modes)
	// C's subtree (value 4) first, then E: two distinct shed levels.
	if len(modes) != 3 {
		t.Fatalf("built %d modes, want 3", len(modes))
	}
	if modes[1].Shed != 2 || modes[2].Shed != 3 {
		t.Errorf("shed counts %d, %d; want 2, 3", modes[1].Shed, modes[2].Shed)
	}
}

func TestModesProportionalBudget(t *testing.T) {
	g := mixed(t)
	modes, err := Modes(g, Options{Policy: ProportionalBudget, Levels: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkLadder(t, g, modes)
	if len(modes) != 4 {
		t.Fatalf("built %d modes, want 4", len(modes))
	}
	// Interior levels keep every task but shrink optional budgets.
	for l := 1; l <= 2; l++ {
		m := modes[l]
		if m.Shed != 0 || m.Graph.NumTasks() != g.NumTasks() {
			t.Errorf("budget level %d sheds tasks", l)
		}
		wantW := rtime.Time(7) // ceil(10·2/3)
		if l == 2 {
			wantW = 4 // ceil(10·1/3)
		}
		if w := m.Graph.Task(m.Old2New[2]).WCET[0]; w != wantW {
			t.Errorf("level %d optional budget %v, want %v", l, w, wantW)
		}
		if w := m.Graph.Task(m.Old2New[0]).WCET[0]; w != 10 {
			t.Errorf("level %d mandatory budget %v, want 10", l, w)
		}
	}
	// The final level sheds the sheddable tasks outright.
	last := modes[3]
	if last.Shed != 3 || last.BudgetFactor != 0 {
		t.Errorf("final budget level: shed %d, factor %v; want 3, 0", last.Shed, last.BudgetFactor)
	}
	// The original graph's budgets are untouched throughout.
	if g.Task(2).WCET[0] != 10 {
		t.Errorf("original graph budget mutated to %v", g.Task(2).WCET[0])
	}
}

func TestModesBadOptions(t *testing.T) {
	g := mixed(t)
	if _, err := Modes(g, Options{Policy: Policy(42)}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Modes(g, Options{Policy: ShedLowestValue, Levels: -1}); err == nil {
		t.Error("negative Levels accepted")
	}
}

func TestControllerEscalation(t *testing.T) {
	c := NewController(ControllerOptions{MaxLevel: 2, CleanStreak: 2})
	hot := Observation{MandatoryMisses: 1}
	if tr := c.Observe(hot); tr.Cause != Escalate || tr.To != 1 {
		t.Fatalf("transition %+v, want escalate to 1", tr)
	}
	if tr := c.Observe(hot); tr.Cause != Escalate || tr.To != 2 {
		t.Fatalf("transition %+v, want escalate to 2", tr)
	}
	if tr := c.Observe(hot); tr.Cause != Saturated || tr.To != 2 {
		t.Fatalf("transition %+v, want saturated at 2", tr)
	}
}

func TestControllerHysteresisAndBackoff(t *testing.T) {
	c := NewController(ControllerOptions{MaxLevel: 2, CleanStreak: 2, Backoff: 2, MaxReadmissions: 3})
	hot := Observation{OptionalMisses: 1}
	var clean Observation
	c.Observe(hot)
	c.Observe(hot) // at level 2
	if tr := c.Observe(clean); tr.Cause != Hold {
		t.Fatalf("transition %+v, want hold", tr)
	}
	if tr := c.Observe(clean); tr.Cause != Probe || tr.To != 1 {
		t.Fatalf("transition %+v, want probe to 1", tr)
	}
	// The probe frame is hot: rolled back, requirement doubled to 4.
	if tr := c.Observe(hot); tr.Cause != ProbeFailed || tr.To != 2 {
		t.Fatalf("transition %+v, want probe-failed back to 2", tr)
	}
	for i := 0; i < 3; i++ {
		if tr := c.Observe(clean); tr.Cause != Hold {
			t.Fatalf("clean frame %d: %+v, want hold (backed-off streak)", i, tr)
		}
	}
	if tr := c.Observe(clean); tr.Cause != Probe || tr.To != 1 {
		t.Fatalf("transition %+v, want probe to 1 after backed-off streak", tr)
	}
	// The probe frame is clean: re-admitted, requirement resets to 2.
	if tr := c.Observe(clean); tr.Cause != Readmitted || tr.To != 1 {
		t.Fatalf("transition %+v, want readmitted at 1", tr)
	}
	if tr := c.Observe(clean); tr.Cause != Probe || tr.To != 0 {
		t.Fatalf("transition %+v, want probe to 0 (reset streak)", tr)
	}
	if tr := c.Observe(clean); tr.Cause != Readmitted || tr.To != 0 {
		t.Fatalf("transition %+v, want readmitted at 0", tr)
	}
	if c.Level() != 0 {
		t.Errorf("final level %d, want 0", c.Level())
	}
}

func TestControllerLockout(t *testing.T) {
	c := NewController(ControllerOptions{MaxLevel: 1, CleanStreak: 1, MaxReadmissions: 1})
	hot := Observation{Aborts: 1}
	var clean Observation
	c.Observe(hot) // level 1
	if tr := c.Observe(clean); tr.Cause != Probe || tr.To != 0 {
		t.Fatalf("transition %+v, want probe to 0", tr)
	}
	if tr := c.Observe(hot); tr.Cause != Locked || tr.To != 1 {
		t.Fatalf("transition %+v, want locked at 1", tr)
	}
	if !c.LockedOut() {
		t.Fatal("controller not locked out")
	}
	for i := 0; i < 5; i++ {
		if tr := c.Observe(clean); tr.Cause != Hold || tr.To != 1 {
			t.Fatalf("locked controller moved: %+v", tr)
		}
	}
}

func TestObservationHot(t *testing.T) {
	cases := []struct {
		obs  Observation
		want bool
	}{
		{Observation{}, false},
		{Observation{Overruns: 3}, false}, // absorbed overruns are fine
		{Observation{MandatoryMisses: 1}, true},
		{Observation{OptionalMisses: 1}, true},
		{Observation{Aborts: 1}, true},
	}
	for _, tc := range cases {
		if got := tc.obs.Hot(); got != tc.want {
			t.Errorf("Hot(%+v) = %v, want %v", tc.obs, got, tc.want)
		}
	}
}

func TestPolicyString(t *testing.T) {
	want := map[Policy]string{
		None: "none", ShedLowestValue: "shed-value",
		ShedLargestParallelSet: "shed-pset", ProportionalBudget: "budget",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(p), p.String(), s)
		}
	}
}
