package degrade

import "fmt"

// ControllerOptions tunes the online mode-change controller.
type ControllerOptions struct {
	// MaxLevel is the highest mode level the controller may escalate to
	// (the top of the ladder Modes built).
	MaxLevel int
	// CleanStreak is the number of consecutive clean frames required
	// before the controller probes one level down (default 3).
	CleanStreak int
	// Backoff multiplies the required clean streak after every failed
	// re-admission probe (default 2), so a marginal system probes ever
	// more rarely instead of oscillating.
	Backoff float64
	// MaxReadmissions bounds the failed re-admission probes before the
	// controller locks at its current level for good (default 3).
	MaxReadmissions int
}

// withDefaults fills the zero fields.
func (o ControllerOptions) withDefaults() ControllerOptions {
	if o.CleanStreak <= 0 {
		o.CleanStreak = 3
	}
	if o.Backoff < 1 {
		o.Backoff = 2
	}
	if o.MaxReadmissions <= 0 {
		o.MaxReadmissions = 3
	}
	return o
}

// Observation is what the controller sees of one executed frame: the
// degradation accounting of the fault-injected run of the current mode.
type Observation struct {
	// MandatoryMisses counts mandatory tasks that missed (or were never
	// placed). Any non-zero value makes the frame inadmissible.
	MandatoryMisses int
	// OptionalMisses counts optional tasks that missed — quality the
	// current mode promised but failed to deliver, so the controller
	// treats it as overload too (a higher mode stops promising it).
	OptionalMisses int
	// Overruns counts observed WCET overruns (informational; overruns
	// absorbed by slack do not make a frame hot).
	Overruns int
	// Aborts counts executions lost to processor failures.
	Aborts int
}

// Hot reports whether the frame shows overload the controller must
// react to: any missed work or lost execution.
func (o Observation) Hot() bool {
	return o.MandatoryMisses > 0 || o.OptionalMisses > 0 || o.Aborts > 0
}

// Cause classifies a controller transition.
type Cause int

const (
	// Hold: no change this frame.
	Hold Cause = iota
	// Escalate: overload at the current level, moved one level up.
	Escalate
	// Saturated: overload at the top level with nowhere left to go.
	Saturated
	// Probe: a sustained clean streak, probing one level down.
	Probe
	// ProbeFailed: the frame after a probe was hot — back up a level,
	// clean-streak requirement backed off.
	ProbeFailed
	// Readmitted: the frame after a probe was clean — the lower level
	// is re-admitted and the streak requirement resets.
	Readmitted
	// Locked: too many failed probes; the controller stays at its
	// current level permanently.
	Locked
)

// String implements fmt.Stringer.
func (c Cause) String() string {
	switch c {
	case Hold:
		return "hold"
	case Escalate:
		return "escalate"
	case Saturated:
		return "saturated"
	case Probe:
		return "probe"
	case ProbeFailed:
		return "probe-failed"
	case Readmitted:
		return "readmitted"
	case Locked:
		return "locked"
	}
	return fmt.Sprintf("Cause(%d)", int(c))
}

// Transition records one controller decision.
type Transition struct {
	// From and To are the mode levels before and after the decision.
	From, To int
	// Cause says why.
	Cause Cause
}

// Controller is the online mode-change state machine. Escalation is
// immediate (an overloaded frame is evidence enough); de-escalation is
// hysteretic (a sustained clean streak earns a one-level probe, a hot
// probe is rolled back and the streak requirement backed off, and after
// MaxReadmissions failed probes the controller locks). The mandatory
// set is safe at every reachable level by Modes' construction, so no
// controller state ever abandons it.
type Controller struct {
	opt      ControllerOptions
	level    int
	streak   int
	required int  // current clean-streak requirement (grows by Backoff)
	fails    int  // failed re-admission probes so far
	probing  bool // last transition was a downward probe awaiting its frame
	locked   bool
}

// NewController returns a controller starting at level 0 (the full
// application).
func NewController(opt ControllerOptions) *Controller {
	opt = opt.withDefaults()
	return &Controller{opt: opt, required: opt.CleanStreak}
}

// Level returns the current mode level.
func (c *Controller) Level() int { return c.level }

// LockedOut reports whether re-admission is permanently disabled.
func (c *Controller) LockedOut() bool { return c.locked }

// Observe feeds one frame's outcome to the controller and returns the
// transition it decides.
func (c *Controller) Observe(obs Observation) Transition {
	from := c.level
	switch {
	case obs.Hot() && c.probing:
		// The probe frame itself was hot: roll back up and back off.
		c.probing = false
		c.fails++
		c.required = int(float64(c.required)*c.opt.Backoff + 0.5)
		if c.level < c.opt.MaxLevel {
			c.level++
		}
		c.streak = 0
		if c.fails >= c.opt.MaxReadmissions {
			c.locked = true
			return Transition{From: from, To: c.level, Cause: Locked}
		}
		return Transition{From: from, To: c.level, Cause: ProbeFailed}

	case obs.Hot():
		c.streak = 0
		if c.level >= c.opt.MaxLevel {
			return Transition{From: from, To: c.level, Cause: Saturated}
		}
		c.level++
		return Transition{From: from, To: c.level, Cause: Escalate}

	case c.probing:
		// The probe frame ran clean: the lower level is re-admitted.
		c.probing = false
		c.required = c.opt.CleanStreak
		c.streak = 1
		return Transition{From: from, To: c.level, Cause: Readmitted}

	default:
		c.streak++
		if c.level > 0 && !c.locked && c.streak >= c.required {
			c.level--
			c.probing = true
			c.streak = 0
			return Transition{From: from, To: c.level, Cause: Probe}
		}
		return Transition{From: from, To: c.level, Cause: Hold}
	}
}
