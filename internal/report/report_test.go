package report

import (
	"strings"
	"testing"
	"time"

	"repro/internal/experiment"
)

func TestGenerate(t *testing.T) {
	opts := experiment.DefaultOptions()
	opts.NumGraphs = 3 // structure check only
	var b strings.Builder
	now := time.Date(2026, 7, 6, 12, 0, 0, 0, time.UTC)
	if err := Generate(&b, opts, now); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# Reproduction report",
		"2026-07-06 12:00",
		"3 workloads/point",
		"## Figure 2", "## Figure 3", "## Figure 4", "## Figure 5", "## Figure 6",
		"## Lateness study",
		"PURE", "ADAPT-L", "WCET-MAX",
		"Wilson",
		"| processors |", // markdown header of figure 2
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Every figure gets a fenced plot.
	if got := strings.Count(out, "```"); got < 12 {
		t.Errorf("expected ≥6 fenced blocks, found %d fence markers", got)
	}
	// Wilson intervals bracket the point estimates.
	if !strings.Contains(out, "[") || !strings.Contains(out, "–") {
		t.Error("confidence intervals missing")
	}
}
