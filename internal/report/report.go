// Package report renders a complete, self-contained markdown report of
// the reproduction: every figure regenerated live, as markdown tables
// with Wilson confidence intervals and ASCII plots, plus the lateness
// study. cmd/slicebench -report writes it to a file, giving downstream
// users a one-command artifact to diff against EXPERIMENTS.md.
package report

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/experiment"
	"repro/internal/textplot"
)

// Generate runs every figure at the given options and writes the
// report. The now parameter stamps the header (passed in so callers —
// and tests — control it).
func Generate(w io.Writer, opts experiment.Options, now time.Time) error {
	fmt.Fprintf(w, "# Reproduction report\n\n")
	fmt.Fprintf(w, "Generated %s — %d workloads/point, master seed %d.\n\n",
		now.Format("2006-01-02 15:04"), opts.NumGraphs, opts.MasterSeed)
	fmt.Fprintf(w, "Success = every task meets its assigned local deadline; the\n")
	fmt.Fprintf(w, "bracketed range is the 95%% Wilson interval.\n")

	var figs []int
	for f := range experiment.Figures {
		figs = append(figs, f)
	}
	sort.Ints(figs)
	for _, f := range figs {
		table := experiment.Figures[f](opts)
		if err := writeTable(w, table); err != nil {
			return err
		}
	}

	lat := experiment.LatenessStudy(opts)
	fmt.Fprintf(w, "\n## %s\n\n```\n%s```\n", lat.Title, experiment.FormatLatenessTable(lat))
	return nil
}

// writeTable renders one figure as a markdown table plus an ASCII plot.
func writeTable(w io.Writer, t experiment.Table) error {
	fmt.Fprintf(w, "\n## %s\n\n", t.Title)

	fmt.Fprintf(w, "| %s |", t.XLabel)
	for _, x := range t.XValues {
		fmt.Fprintf(w, " %s |", x)
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, "|---|")
	for range t.XValues {
		fmt.Fprint(w, "---|")
	}
	fmt.Fprintln(w)
	for _, s := range t.Series {
		fmt.Fprintf(w, "| %s |", s.Name)
		for _, p := range s.Points {
			lo, hi := p.Success.Wilson()
			fmt.Fprintf(w, " %.1f%% [%.0f–%.0f] |", 100*p.Success.Value(), 100*lo, 100*hi)
		}
		fmt.Fprintln(w)
	}

	var series []textplot.Series
	for i, s := range t.Series {
		series = append(series, textplot.Series{Name: s.Name, Values: t.SuccessRow(i)})
	}
	fmt.Fprintf(w, "\n```\n%s```\n",
		textplot.Plot("", t.XValues, series, textplot.Options{Height: 12, Min: 0, Max: 1, Percent: true}))
	return nil
}
