package faults

import (
	"fmt"
	"math"
)

// ParamError is a typed rejection of one fault-model parameter: which
// field was bad, the offending value, and why. Plan.Validate (and hence
// Materialize) returns it instead of letting NaN/Inf probabilities or
// negative severities silently produce nonsense traces; callers can
// errors.As for it to distinguish configuration mistakes from pipeline
// failures.
type ParamError struct {
	// Param is the rejected field, e.g. "OverrunProb".
	Param string
	// Value is the offending value as a float (rtime fields are
	// converted).
	Value float64
	// Reason says what was expected, e.g. "outside [0, 1]".
	Reason string
}

// Error implements error.
func (e *ParamError) Error() string {
	return fmt.Sprintf("faults: %s = %v %s", e.Param, e.Value, e.Reason)
}

// checkProb rejects probabilities outside [0, 1], including NaN and Inf
// (which pass naive < / > comparisons).
func checkProb(name string, v float64) *ParamError {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &ParamError{Param: name, Value: v, Reason: "is not a finite probability"}
	}
	if v < 0 || v > 1 {
		return &ParamError{Param: name, Value: v, Reason: "outside [0, 1]"}
	}
	return nil
}

// checkFactor rejects negative, NaN, and Inf severity factors.
func checkFactor(name string, v float64) *ParamError {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return &ParamError{Param: name, Value: v, Reason: "is not a finite factor"}
	}
	if v < 0 {
		return &ParamError{Param: name, Value: v, Reason: "is negative"}
	}
	return nil
}
