package faults

import (
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/rtime"
)

func testWorkload(t *testing.T, seed int64) *gen.Workload {
	t.Helper()
	cfg := gen.Default(3)
	cfg.Seed = seed
	w, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestScaledZeroIntensityIsFaultFree(t *testing.T) {
	p := Scaled(0, 7)
	if !p.Zero() {
		t.Fatalf("Scaled(0) = %+v, want a zero plan", p)
	}
	w := testWorkload(t, 11)
	tr, err := p.Materialize(w.Graph, w.Platform, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Zero() {
		t.Fatalf("zero plan materialized a non-zero trace: %+v", tr)
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	w := testWorkload(t, 3)
	p := Scaled(0.8, 12345)
	a := p.MustMaterialize(w.Graph, w.Platform, 900)
	b := p.MustMaterialize(w.Graph, w.Platform, 900)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan and workload produced different traces")
	}
	p2 := Scaled(0.8, 54321)
	c := p2.MustMaterialize(w.Graph, w.Platform, 900)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestTraceExec(t *testing.T) {
	tr := ZeroTrace(2, 2)
	if got := tr.Exec(0, 0, 20); got != 20 {
		t.Fatalf("zero trace Exec = %d, want 20", got)
	}
	tr.ExecScale[0] = 1.5
	if got := tr.Exec(0, 0, 20); got != 30 {
		t.Fatalf("1.5×20 = %d, want 30", got)
	}
	tr.Slow[1] = 2
	if got := tr.Exec(0, 1, 20); got != 60 {
		t.Fatalf("1.5×2×20 = %d, want 60", got)
	}
	tr.ExecAdd[1] = 5
	if got := tr.Exec(1, 0, 20); got != 25 {
		t.Fatalf("20+5 = %d, want 25", got)
	}
	if got := tr.Exec(0, 0, 0); got != 0 {
		t.Fatalf("Exec of zero wcet = %d, want 0", got)
	}
}

func TestMaterializeSeverityBounds(t *testing.T) {
	w := testWorkload(t, 17)
	p := Scaled(1, 99)
	tr := p.MustMaterialize(w.Graph, w.Platform, 1200)
	for i, s := range tr.ExecScale {
		if s < 1 || s > 1+p.OverrunFactor {
			t.Fatalf("ExecScale[%d] = %v outside [1, %v]", i, s, 1+p.OverrunFactor)
		}
	}
	for q, s := range tr.Slow {
		if s != 1 && s != 1+p.SlowFactor {
			t.Fatalf("Slow[%d] = %v, want 1 or %v", q, s, 1+p.SlowFactor)
		}
	}
	for q, d := range tr.DownAt {
		if d < rtime.Infinity && (d < 1 || d > 1200) {
			t.Fatalf("DownAt[%d] = %d outside the horizon", q, d)
		}
	}
	for arc, extra := range tr.MsgExtra {
		if extra < 1 || extra > p.JitterMax {
			t.Fatalf("MsgExtra[%v] = %d outside [1, %d]", arc, extra, p.JitterMax)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{
		{OverrunProb: -0.1},
		{OverrunProb: 1.1},
		{OverrunFactor: -1},
		{SlowProb: 2},
		{SlowFactor: -0.5},
		{FailProb: -1},
		{FailFrac: 1.5},
		{JitterProb: 0.5, JitterMax: 0},
		{JitterMax: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", p)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan invalid: %v", err)
	}
	if err := Scaled(1, 1).Validate(); err != nil {
		t.Errorf("Scaled(1) invalid: %v", err)
	}
}
