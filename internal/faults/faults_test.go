package faults

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/rtime"
)

func testWorkload(t *testing.T, seed int64) *gen.Workload {
	t.Helper()
	cfg := gen.Default(3)
	cfg.Seed = seed
	w, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestScaledZeroIntensityIsFaultFree(t *testing.T) {
	p := Scaled(0, 7)
	if !p.Zero() {
		t.Fatalf("Scaled(0) = %+v, want a zero plan", p)
	}
	w := testWorkload(t, 11)
	tr, err := p.Materialize(w.Graph, w.Platform, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.Zero() {
		t.Fatalf("zero plan materialized a non-zero trace: %+v", tr)
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	w := testWorkload(t, 3)
	p := Scaled(0.8, 12345)
	a := p.MustMaterialize(w.Graph, w.Platform, 900)
	b := p.MustMaterialize(w.Graph, w.Platform, 900)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan and workload produced different traces")
	}
	p2 := Scaled(0.8, 54321)
	c := p2.MustMaterialize(w.Graph, w.Platform, 900)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces (suspicious)")
	}
}

func TestTraceExec(t *testing.T) {
	tr := ZeroTrace(2, 2)
	if got := tr.Exec(0, 0, 20); got != 20 {
		t.Fatalf("zero trace Exec = %d, want 20", got)
	}
	tr.ExecScale[0] = 1.5
	if got := tr.Exec(0, 0, 20); got != 30 {
		t.Fatalf("1.5×20 = %d, want 30", got)
	}
	tr.Slow[1] = 2
	if got := tr.Exec(0, 1, 20); got != 60 {
		t.Fatalf("1.5×2×20 = %d, want 60", got)
	}
	tr.ExecAdd[1] = 5
	if got := tr.Exec(1, 0, 20); got != 25 {
		t.Fatalf("20+5 = %d, want 25", got)
	}
	if got := tr.Exec(0, 0, 0); got != 0 {
		t.Fatalf("Exec of zero wcet = %d, want 0", got)
	}
}

func TestMaterializeSeverityBounds(t *testing.T) {
	w := testWorkload(t, 17)
	p := Scaled(1, 99)
	tr := p.MustMaterialize(w.Graph, w.Platform, 1200)
	for i, s := range tr.ExecScale {
		if s < 1 || s > 1+p.OverrunFactor {
			t.Fatalf("ExecScale[%d] = %v outside [1, %v]", i, s, 1+p.OverrunFactor)
		}
	}
	for q, s := range tr.Slow {
		if s != 1 && s != 1+p.SlowFactor {
			t.Fatalf("Slow[%d] = %v, want 1 or %v", q, s, 1+p.SlowFactor)
		}
	}
	for q, d := range tr.DownAt {
		if d < rtime.Infinity && (d < 1 || d > 1200) {
			t.Fatalf("DownAt[%d] = %d outside the horizon", q, d)
		}
	}
	for arc, extra := range tr.MsgExtra {
		if extra < 1 || extra > p.JitterMax {
			t.Fatalf("MsgExtra[%v] = %d outside [1, %d]", arc, extra, p.JitterMax)
		}
	}
}

func TestValidate(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name  string
		plan  Plan
		param string // expected ParamError.Param, "" for valid
	}{
		{"zero plan", Plan{}, ""},
		{"scaled full", Scaled(1, 1), ""},
		{"neg overrun prob", Plan{OverrunProb: -0.1}, "OverrunProb"},
		{"overrun prob above 1", Plan{OverrunProb: 1.1}, "OverrunProb"},
		{"nan overrun prob", Plan{OverrunProb: nan}, "OverrunProb"},
		{"inf overrun prob", Plan{OverrunProb: inf}, "OverrunProb"},
		{"neg overrun factor", Plan{OverrunFactor: -1}, "OverrunFactor"},
		{"nan overrun factor", Plan{OverrunFactor: nan}, "OverrunFactor"},
		{"inf overrun factor", Plan{OverrunFactor: inf}, "OverrunFactor"},
		{"neg overrun add", Plan{OverrunAdd: -3}, "OverrunAdd"},
		{"slow prob above 1", Plan{SlowProb: 2}, "SlowProb"},
		{"nan slow prob", Plan{SlowProb: nan}, "SlowProb"},
		{"neg slow factor", Plan{SlowFactor: -0.5}, "SlowFactor"},
		{"inf slow factor", Plan{SlowFactor: inf}, "SlowFactor"},
		{"neg fail prob", Plan{FailProb: -1}, "FailProb"},
		{"fail frac above 1", Plan{FailFrac: 1.5}, "FailFrac"},
		{"nan fail frac", Plan{FailFrac: nan}, "FailFrac"},
		{"nan jitter prob", Plan{JitterProb: nan}, "JitterProb"},
		{"jitter without room", Plan{JitterProb: 0.5, JitterMax: 0}, "JitterMax"},
		{"neg jitter max", Plan{JitterMax: -1}, "JitterMax"},
	}
	for _, tc := range cases {
		err := tc.plan.Validate()
		if tc.param == "" {
			if err != nil {
				t.Errorf("%s: Validate = %v, want nil", tc.name, err)
			}
			continue
		}
		var pe *ParamError
		if !errors.As(err, &pe) {
			t.Errorf("%s: Validate = %v, want *ParamError", tc.name, err)
			continue
		}
		if pe.Param != tc.param {
			t.Errorf("%s: rejected %q, want %q (%v)", tc.name, pe.Param, tc.param, pe)
		}
	}
}

// A NaN intensity slips through Scaled's clamps into every probability;
// Materialize must reject the resulting plan rather than draw from it.
func TestMaterializeRejectsNaNIntensity(t *testing.T) {
	w := testWorkload(t, 5)
	plan := Scaled(math.NaN(), 7)
	if _, err := plan.Materialize(w.Graph, w.Platform, 100); err == nil {
		t.Fatal("NaN-intensity plan materialized")
	}
}

func TestTraceProject(t *testing.T) {
	tr := ZeroTrace(4, 2)
	tr.ExecScale[1], tr.ExecScale[3] = 1.5, 2
	tr.ExecAdd[3] = 7
	tr.Slow[1] = 1.25
	tr.DownAt[0] = 40
	tr.MsgExtra[[2]int{0, 1}] = 3 // endpoint 1 kept
	tr.MsgExtra[[2]int{1, 2}] = 5 // endpoint 2 shed
	tr.MsgExtra[[2]int{1, 3}] = 9 // both kept

	p := tr.Project([]int{1, 3}) // keep old tasks 1 and 3
	if p.ExecScale[0] != 1.5 || p.ExecScale[1] != 2 || p.ExecAdd[1] != 7 {
		t.Errorf("per-task perturbations not remapped: %+v", p)
	}
	if p.Slow[1] != 1.25 || p.DownAt[0] != 40 {
		t.Errorf("platform-wide state not carried over: %+v", p)
	}
	if len(p.MsgExtra) != 1 || p.MsgExtra[[2]int{0, 1}] != 9 {
		t.Errorf("MsgExtra = %v, want {[0 1]:9}", p.MsgExtra)
	}
	// The original is untouched.
	if tr.ExecScale[0] != 1 || len(tr.MsgExtra) != 3 {
		t.Error("Project mutated its receiver")
	}
}

func TestTraceTile(t *testing.T) {
	tr := ZeroTrace(3, 2)
	tr.ExecScale[1] = 1.5
	tr.ExecAdd[2] = 7
	tr.Slow[0] = 1.25
	tr.DownAt[1] = 40
	tr.MsgExtra[[2]int{0, 2}] = 3

	tiled := tr.Tile(3, 2)
	if len(tiled.ExecScale) != 6 || len(tiled.ExecAdd) != 6 {
		t.Fatalf("tiled per-task state sized %d/%d, want 6", len(tiled.ExecScale), len(tiled.ExecAdd))
	}
	// Per-task deviations repeat in every release copy.
	if tiled.ExecScale[1] != 1.5 || tiled.ExecScale[4] != 1.5 || tiled.ExecAdd[2] != 7 || tiled.ExecAdd[5] != 7 {
		t.Errorf("per-task perturbations not tiled: %+v", tiled)
	}
	// Per-processor state is shared across releases, not duplicated.
	if len(tiled.Slow) != 2 || tiled.Slow[0] != 1.25 || tiled.DownAt[1] != 40 {
		t.Errorf("platform-wide state not carried over: %+v", tiled)
	}
	// Message jitter applies to the corresponding arc of every copy.
	if len(tiled.MsgExtra) != 2 || tiled.MsgExtra[[2]int{0, 2}] != 3 || tiled.MsgExtra[[2]int{3, 5}] != 3 {
		t.Errorf("MsgExtra = %v, want the arc in both copies", tiled.MsgExtra)
	}
	// The original is untouched.
	if len(tr.ExecScale) != 3 || len(tr.MsgExtra) != 1 {
		t.Error("Tile mutated its receiver")
	}
}
