// Package faults models run-time deviations from the platform
// assumptions the deadline-assignment step bakes into its windows: WCET
// overruns (a task executes longer than its declared worst case),
// processor degradation (a class slows down, or a processor drops out
// mid-run), and bus jitter (a message occupies the interconnect for
// longer than the nominal per-item delay).
//
// The paper's robustness claim for ADAPT-L is that its contention-aware
// windows leave slack where contention actually bites, so assignments
// should degrade gracefully when reality is worse than the model. This
// package provides the fault side of that experiment: a Plan describes
// a fault *distribution*; Materialize draws one concrete, fully
// deterministic Trace for a workload from a seeded generator. The sim
// package executes schedules under a Trace and reports degradation.
//
// All randomness flows through a single *rand.Rand seeded from
// Plan.Seed — there is no package-global generator — so a given
// (Plan, workload) pair always yields byte-identical fault traces
// across runs and platforms.
package faults

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/taskgraph"
)

// Plan is a fault distribution: the probabilities and severities from
// which one concrete Trace is drawn per workload. The zero value is the
// fault-free plan.
type Plan struct {
	// Seed drives all randomness of one materialization.
	Seed int64

	// OverrunProb is the per-task probability of a WCET overrun.
	OverrunProb float64
	// OverrunFactor bounds the multiplicative severity of an overrun:
	// an overrunning task executes for up to (1+OverrunFactor)·WCET,
	// uniformly drawn.
	OverrunFactor float64
	// OverrunAdd is an additive severity applied to every overrunning
	// task on top of the multiplicative draw (0 for none).
	OverrunAdd rtime.Time

	// SlowProb is the per-class probability that a whole processor
	// class degrades (e.g. thermal throttling).
	SlowProb float64
	// SlowFactor is the slowdown severity: a degraded class executes
	// everything (1+SlowFactor)× slower.
	SlowFactor float64

	// FailProb is the probability that one processor (uniformly chosen)
	// drops out of the system.
	FailProb float64
	// FailFrac places the failure instant as a fraction of the
	// workload's end-to-end horizon (see Materialize's span argument).
	FailFrac float64

	// JitterProb is the per-message probability of bus jitter.
	JitterProb float64
	// JitterMax bounds the extra delay of a jittered message, uniform
	// in [1, JitterMax] time units.
	JitterMax rtime.Time
}

// Zero reports whether the plan can only ever produce fault-free
// traces.
func (p Plan) Zero() bool {
	return p.OverrunProb <= 0 && p.SlowProb <= 0 && p.FailProb <= 0 && p.JitterProb <= 0
}

// Validate checks the plan for consistency. Violations are reported as
// *ParamError values naming the rejected field; NaN and Inf are rejected
// explicitly rather than slipping past range comparisons.
func (p Plan) Validate() error {
	for _, c := range []struct {
		name string
		v    float64
		prob bool
	}{
		{"OverrunProb", p.OverrunProb, true},
		{"OverrunFactor", p.OverrunFactor, false},
		{"SlowProb", p.SlowProb, true},
		{"SlowFactor", p.SlowFactor, false},
		{"FailProb", p.FailProb, true},
		{"FailFrac", p.FailFrac, true},
		{"JitterProb", p.JitterProb, true},
	} {
		var err *ParamError
		if c.prob {
			err = checkProb(c.name, c.v)
		} else {
			err = checkFactor(c.name, c.v)
		}
		if err != nil {
			return err
		}
	}
	switch {
	case p.OverrunAdd < 0:
		return &ParamError{Param: "OverrunAdd", Value: float64(p.OverrunAdd), Reason: "is negative"}
	case p.JitterMax < 0:
		return &ParamError{Param: "JitterMax", Value: float64(p.JitterMax), Reason: "is negative"}
	case p.JitterProb > 0 && p.JitterMax < 1:
		return &ParamError{Param: "JitterMax", Value: float64(p.JitterMax),
			Reason: fmt.Sprintf("cannot host jitter with JitterProb %v", p.JitterProb)}
	}
	return nil
}

// Scaled returns the canonical one-knob fault family used for the
// graceful-degradation curves: every probability and severity grows
// linearly with intensity ∈ [0, 1]. Intensity 0 is the fault-free plan;
// intensity 1 combines frequent overruns (30 % of tasks up to 50 %
// over), likely class slowdown (25 % slower), a probable mid-run
// processor loss, and jittery messages.
func Scaled(intensity float64, seed int64) Plan {
	if intensity < 0 {
		intensity = 0
	}
	if intensity > 1 {
		intensity = 1
	}
	return Plan{
		Seed:          seed,
		OverrunProb:   0.30 * intensity,
		OverrunFactor: 0.50 * intensity,
		SlowProb:      0.20 * intensity,
		SlowFactor:    0.25 * intensity,
		FailProb:      0.25 * intensity,
		FailFrac:      0.40,
		JitterProb:    0.50 * intensity,
		JitterMax:     rtime.Time(math.Ceil(4 * intensity)),
	}
}

// Trace is one concrete materialized fault scenario for one workload:
// everything the injected execution needs, with no randomness left.
type Trace struct {
	// ExecScale[i] multiplies task i's execution time on whatever class
	// it lands on (≥ 1; exactly 1 for non-overrunning tasks).
	ExecScale []float64
	// ExecAdd[i] is extra absolute execution time for task i.
	ExecAdd []rtime.Time
	// Slow[q] multiplies every execution time on processor q (≥ 1).
	Slow []float64
	// DownAt[q] is the instant processor q fails (rtime.Infinity when
	// it never does). A failing processor aborts whatever it is running
	// at that instant; the aborted work is lost.
	DownAt []rtime.Time
	// MsgExtra maps an arc (from, to) to extra bus delay for its
	// message, on top of the platform's nominal cost.
	MsgExtra map[[2]int]rtime.Time
}

// Zero reports whether the trace perturbs nothing, i.e. injected
// execution under it is exactly nominal execution.
func (t *Trace) Zero() bool {
	for _, s := range t.ExecScale {
		if s != 1 {
			return false
		}
	}
	for _, a := range t.ExecAdd {
		if a != 0 {
			return false
		}
	}
	for _, s := range t.Slow {
		if s != 1 {
			return false
		}
	}
	for _, d := range t.DownAt {
		if d < rtime.Infinity {
			return false
		}
	}
	return len(t.MsgExtra) == 0
}

// ZeroTrace returns the fault-free trace for a workload of n tasks on m
// processors.
func ZeroTrace(n, m int) *Trace {
	t := &Trace{
		ExecScale: make([]float64, n),
		ExecAdd:   make([]rtime.Time, n),
		Slow:      make([]float64, m),
		DownAt:    make([]rtime.Time, m),
		MsgExtra:  map[[2]int]rtime.Time{},
	}
	for i := range t.ExecScale {
		t.ExecScale[i] = 1
	}
	for q := range t.Slow {
		t.Slow[q] = 1
		t.DownAt[q] = rtime.Infinity
	}
	return t
}

// Tile returns the trace of a release-expanded system: k release-major
// copies of an n-task base graph (gen.ExpandReleases), where the copy
// of task i in release k sits at k·n+i. Per-task deviations repeat for
// every release — an overrun or estimation error is a property of the
// task, so every instance of it misbehaves the same way — while the
// per-processor state (slow-downs, failure instants) is shared by all
// releases, and a message jitter applies to the corresponding arc of
// every copy. The receiver must be sized for n tasks.
func (t *Trace) Tile(n, k int) *Trace {
	if len(t.ExecScale) != n {
		panic("faults: Tile receiver not sized for the base graph")
	}
	out := &Trace{
		ExecScale: make([]float64, 0, n*k),
		ExecAdd:   make([]rtime.Time, 0, n*k),
		Slow:      append([]float64(nil), t.Slow...),
		DownAt:    append([]rtime.Time(nil), t.DownAt...),
		MsgExtra:  make(map[[2]int]rtime.Time, len(t.MsgExtra)*k),
	}
	for c := 0; c < k; c++ {
		out.ExecScale = append(out.ExecScale, t.ExecScale...)
		out.ExecAdd = append(out.ExecAdd, t.ExecAdd...)
		for arc, extra := range t.MsgExtra {
			out.MsgExtra[[2]int{c*n + arc[0], c*n + arc[1]}] = extra
		}
	}
	return out
}

// Exec returns the faulted execution time of task i running a nominal
// wcet on processor q: scale, slow-down, then the additive term, never
// below one unit (or below zero for a zero-length nominal).
func (t *Trace) Exec(i, q int, wcet rtime.Time) rtime.Time {
	if wcet <= 0 {
		return wcet
	}
	c := rtime.Time(math.Ceil(t.ExecScale[i] * t.Slow[q] * float64(wcet)))
	c += t.ExecAdd[i]
	if c < 1 {
		c = 1
	}
	return c
}

// ExtraMsg returns the extra bus delay of the (from, to) message.
func (t *Trace) ExtraMsg(from, to int) rtime.Time {
	return t.MsgExtra[[2]int{from, to}]
}

// Project restricts the trace to a subgraph: new2old maps the reduced
// graph's task IDs to the original ones the trace was materialized for.
// Per-task perturbations follow the surviving tasks, per-processor state
// (slowdowns, failure instants) is platform-wide and carries over
// unchanged, and message jitter survives for arcs whose both endpoints
// are kept. The graceful-degradation machinery uses this so that every
// operating mode of a workload faces the *same* fault scenario — paired
// comparison across degradation levels.
func (t *Trace) Project(new2old []int) *Trace {
	out := &Trace{
		ExecScale: make([]float64, len(new2old)),
		ExecAdd:   make([]rtime.Time, len(new2old)),
		Slow:      append([]float64(nil), t.Slow...),
		DownAt:    append([]rtime.Time(nil), t.DownAt...),
		MsgExtra:  map[[2]int]rtime.Time{},
	}
	old2new := map[int]int{}
	for ni, oi := range new2old {
		out.ExecScale[ni] = t.ExecScale[oi]
		out.ExecAdd[ni] = t.ExecAdd[oi]
		old2new[oi] = ni
	}
	for arc, extra := range t.MsgExtra {
		nf, okF := old2new[arc[0]]
		nt, okT := old2new[arc[1]]
		if okF && okT {
			out.MsgExtra[[2]int{nf, nt}] = extra
		}
	}
	return out
}

// Materialize draws one concrete fault trace for the given workload.
// span is the end-to-end horizon the failure instant is placed within
// (typically the workload's end-to-end deadline, which is independent
// of the metric under evaluation, so that every metric faces the exact
// same fault scenario — paired comparisons). The draw order is fixed:
// per-task overruns in ID order, per-class slowdowns, the processor
// loss, then per-arc jitter in arc order.
func (p Plan) Materialize(g *taskgraph.Graph, plat *arch.Platform, span rtime.Time) (*Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	n, m := g.NumTasks(), plat.M()
	t := ZeroTrace(n, m)

	for i := 0; i < n; i++ {
		if p.OverrunProb > 0 && rng.Float64() < p.OverrunProb {
			t.ExecScale[i] = 1 + p.OverrunFactor*rng.Float64()
			t.ExecAdd[i] = p.OverrunAdd
		}
	}
	if p.SlowProb > 0 {
		for k := 0; k < plat.NumClasses(); k++ {
			if rng.Float64() >= p.SlowProb {
				continue
			}
			for q := 0; q < m; q++ {
				if plat.ClassOf(q) == k {
					t.Slow[q] = 1 + p.SlowFactor
				}
			}
		}
	}
	if p.FailProb > 0 && rng.Float64() < p.FailProb {
		q := rng.Intn(m)
		at := rtime.Time(math.Round(p.FailFrac * float64(span)))
		if at < 1 {
			at = 1
		}
		t.DownAt[q] = at
	}
	if p.JitterProb > 0 && p.JitterMax >= 1 {
		for _, a := range g.Arcs() {
			if a.Items <= 0 {
				continue
			}
			if rng.Float64() < p.JitterProb {
				t.MsgExtra[[2]int{a.From, a.To}] = 1 + rtime.Time(rng.Int63n(int64(p.JitterMax)))
			}
		}
	}
	return t, nil
}

// MustMaterialize is Materialize that panics on error; plan errors are
// programming errors in experiment setup.
func (p Plan) MustMaterialize(g *taskgraph.Graph, plat *arch.Platform, span rtime.Time) *Trace {
	t, err := p.Materialize(g, plat, span)
	if err != nil {
		panic(err)
	}
	return t
}
