package robust

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/faults"
	"repro/internal/gen"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

// chain builds a single-class linear chain with the given WCETs and an
// end-to-end deadline on the last task.
func chain(t testing.TB, costs []rtime.Time, ete rtime.Time) *taskgraph.Graph {
	t.Helper()
	g := taskgraph.NewGraph(1)
	for _, c := range costs {
		g.MustAddTask("", []rtime.Time{c}, 0)
	}
	for i := 1; i < len(costs); i++ {
		g.MustAddArc(i-1, i, 0)
	}
	g.Task(len(costs) - 1).ETEDeadline = ete
	g.MustFreeze()
	return g
}

func buildPlan(t testing.TB, g *taskgraph.Graph, p *arch.Platform,
	metric slicing.Metric) ([]rtime.Time, *slicing.Assignment, *sched.Schedule) {
	t.Helper()
	est, err := wcet.Estimates(g, p, wcet.AVG)
	if err != nil {
		t.Fatal(err)
	}
	asg, err := slicing.Distribute(g, est, p.M(), metric, slicing.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	s, err := sched.Dispatch(g, p, asg)
	if err != nil {
		t.Fatal(err)
	}
	return est, asg, s
}

func TestBreakdownFactorChain(t *testing.T) {
	// PURE windows [0,20)[20,40)[40,60): each task survives scaling up
	// to exactly 2 (ceil(10φ) ≤ 20 with arrival-gated starts), so the
	// bisection must land just below 2.
	g := chain(t, []rtime.Time{10, 10, 10}, 60)
	p := arch.Homogeneous(1)
	_, asg, s := buildPlan(t, g, p, slicing.PURE())
	b, err := BreakdownFactor(g, p, asg, s, BreakdownOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !b.SurvivesNominal {
		t.Error("nominal chain should survive")
	}
	if b.Unbounded {
		t.Error("chain breakdown reported unbounded")
	}
	if b.Factor < 1.9 || b.Factor > 2.0 {
		t.Errorf("breakdown factor = %v, want ≈ 2", b.Factor)
	}
}

func TestBreakdownFactorBelowOne(t *testing.T) {
	// ETE 15 cannot hold 20 units of work: nominal fails and the
	// breakdown factor is the speedup reality needs. The slicer gives
	// task 0 the window [0,5), so survival requires ceil(10φ) ≤ 5,
	// i.e. φ* = 0.5 exactly.
	g := chain(t, []rtime.Time{10, 10}, 15)
	p := arch.Homogeneous(1)
	_, asg, s := buildPlan(t, g, p, slicing.PURE())
	b, err := BreakdownFactor(g, p, asg, s, BreakdownOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if b.SurvivesNominal {
		t.Error("over-tight chain should not survive nominally")
	}
	if b.Factor < 0.5-1.0/64 || b.Factor > 0.5+1.0/64 {
		t.Errorf("breakdown factor = %v, want ≈ 0.5", b.Factor)
	}
}

func TestBreakdownFactorUnbounded(t *testing.T) {
	g := chain(t, []rtime.Time{10, 10}, 1000)
	p := arch.Homogeneous(1)
	_, asg, s := buildPlan(t, g, p, slicing.PURE())
	b, err := BreakdownFactor(g, p, asg, s, BreakdownOptions{MaxFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !b.Unbounded || b.Factor != 4 {
		t.Errorf("breakdown = %+v, want unbounded at the cap", b)
	}
}

func TestBreakdownFactorDeterministic(t *testing.T) {
	cfg := gen.Default(3)
	for idx := 0; idx < 4; idx++ {
		cfg.Seed = gen.SubSeed(1, idx)
		w, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		_, asg, s := buildPlan(t, w.Graph, w.Platform, slicing.AdaptL())
		a, err := BreakdownFactor(w.Graph, w.Platform, asg, s, BreakdownOptions{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := BreakdownFactor(w.Graph, w.Platform, asg, s, BreakdownOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("seed %d: breakdown not deterministic: %+v vs %+v", idx, a, b)
		}
		if a.Factor < 0 {
			t.Errorf("seed %d: negative factor %v", idx, a.Factor)
		}
	}
}

func TestResliceLoopRecovers(t *testing.T) {
	// Task 0 overruns 2.5×: it finishes at 25, past its window [0,20).
	// One re-slice round with the observed cost (25) widens its slice
	// to [0,30) and the run comes back clean.
	g := chain(t, []rtime.Time{10, 10, 10}, 60)
	p := arch.Homogeneous(1)
	est, _, _ := buildPlan(t, g, p, slicing.PURE())
	tr := faults.ZeroTrace(g.NumTasks(), p.M())
	tr.ExecScale[0] = 2.5
	res, err := ResliceLoop(g, p, est, slicing.PURE(), slicing.DefaultParams(), tr, ResliceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered {
		t.Fatalf("not recovered: %+v, degradation %+v", res, res.Final.Degradation)
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
	if res.Estimates[0] < 25 {
		t.Errorf("corrected estimate = %d, want ≥ 25 (the observation)", res.Estimates[0])
	}
	if res.Final.Degradation.Misses != 0 {
		t.Errorf("final run still misses %d tasks", res.Final.Degradation.Misses)
	}
}

func TestResliceLoopOverload(t *testing.T) {
	// A 7× overrun (70 units) can never fit the 60-unit end-to-end
	// window: after one correction the estimates match reality exactly
	// (nothing left to learn), so the loop must stop early — well
	// before the retry bound — without claiming recovery.
	g := chain(t, []rtime.Time{10, 10, 10}, 60)
	p := arch.Homogeneous(1)
	est, _, _ := buildPlan(t, g, p, slicing.PURE())
	tr := faults.ZeroTrace(g.NumTasks(), p.M())
	tr.ExecScale[0] = 7
	res, err := ResliceLoop(g, p, est, slicing.PURE(), slicing.DefaultParams(), tr, ResliceOptions{MaxRetries: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovered {
		t.Error("recovered an impossible overload")
	}
	if res.Iterations >= 6 {
		t.Errorf("iterations = %d, want an early nothing-to-learn stop", res.Iterations)
	}
	if res.Final.Degradation.Misses == 0 {
		t.Error("final run reports no misses despite the overload")
	}
	if res.Estimates[0] < 70 {
		t.Errorf("corrected estimate = %d, want the full observation 70", res.Estimates[0])
	}
}

func TestResliceLoopZeroTraceIdentity(t *testing.T) {
	// Under a zero trace a feasible workload needs no feedback at all.
	g := chain(t, []rtime.Time{10, 10, 10}, 60)
	p := arch.Homogeneous(1)
	est, _, _ := buildPlan(t, g, p, slicing.PURE())
	res, err := ResliceLoop(g, p, est, slicing.PURE(), slicing.DefaultParams(),
		faults.ZeroTrace(g.NumTasks(), p.M()), ResliceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Recovered || res.Iterations != 0 {
		t.Errorf("zero trace: recovered=%v iterations=%d, want clean nominal run",
			res.Recovered, res.Iterations)
	}
}
