// Package robust quantifies how much WCET estimation error a deadline
// assignment tolerates, and recovers from observed overruns by feeding
// corrected estimates back into the slicing step.
//
// The paper's titular claim is that ADAPT-L is *robust*: its
// success-ratio advantage survives inaccurate WCET estimates (§5.3).
// The figures only compare estimation strategies at a point, though —
// they never measure a margin. This package provides two instruments:
//
//   - BreakdownFactor: the critical uniform WCET scaling factor φ* at
//     which an assignment first misses a deadline when every task's true
//     execution time is φ·WCET while the dispatcher keeps planning with
//     nominal knowledge. A larger φ* means the metric left its slack
//     where overruns actually bite.
//
//   - ResliceLoop: adaptive re-slicing feedback. When the fault-injected
//     executor observes overruns, the observed execution times become
//     corrected estimates, the slicer redistributes the end-to-end
//     window, and the run is replayed — with bounded retries and a
//     multiplicative backoff on the inflation factor, mirroring how an
//     online system would re-plan after reality disagrees with the model.
//
// Both instruments execute through sim.Inject, so a zero perturbation
// reproduces the nominal dispatcher exactly.
package robust

import (
	"context"
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/deadline"
	"repro/internal/faults"
	"repro/internal/pipeline"
	"repro/internal/rtime"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// BreakdownOptions bounds the critical-factor search.
type BreakdownOptions struct {
	// MaxFactor is the search ceiling (default 4): workloads that still
	// meet every deadline with 4× execution times are reported Unbounded.
	MaxFactor float64
	// Tol is the bracket width at which bisection stops (default 1/64).
	Tol float64
	// Reclaim runs the online slack-reclamation policy during the probe
	// executions, measuring the breakdown of the recovered system.
	Reclaim bool
}

func (o BreakdownOptions) withDefaults() BreakdownOptions {
	if o.MaxFactor <= 0 {
		o.MaxFactor = 4
	}
	if o.Tol <= 0 {
		o.Tol = 1.0 / 64
	}
	return o
}

// Breakdown is the outcome of a critical-factor search.
type Breakdown struct {
	// Factor is the largest probed uniform WCET scaling the assignment
	// survives (every task meets its originally assigned deadline).
	// Values below 1 mean the nominal assignment already fails and
	// reality must be *faster* than the estimates by that factor.
	Factor float64
	// SurvivesNominal reports the φ=1 probe — exactly the nominal
	// dispatcher's success on this workload.
	SurvivesNominal bool
	// Unbounded reports that the assignment survived at MaxFactor, so
	// Factor is only a lower bound.
	Unbounded bool
}

// BreakdownFactor bisects for the critical uniform WCET scaling factor
// of one (assignment, schedule) pair. Each probe executes the schedule
// with every task's true execution time scaled by φ (the dispatcher
// still decides with nominal WCET knowledge, as in sim.Inject) and asks
// whether every originally assigned deadline is met.
//
// Survival is not perfectly monotone in φ — early completions can
// trigger Graham anomalies — so the result is the bisection limit of the
// first observed survive/fail bracket, which is the standard sensitivity
// measure and deterministic for a given workload.
func BreakdownFactor(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment,
	s *sched.Schedule, opt BreakdownOptions) (Breakdown, error) {

	opt = opt.withDefaults()
	n, m := g.NumTasks(), p.M()
	return bisect(context.Background(), opt, func(factor float64) (bool, error) {
		tr := faults.ZeroTrace(n, m)
		for i := range tr.ExecScale {
			tr.ExecScale[i] = factor
		}
		ir, err := sim.Inject(g, p, asg, s, sim.Options{Faults: tr, Reclaim: opt.Reclaim})
		if err != nil {
			return false, err
		}
		return ir.Degradation.Misses == 0, nil
	})
}

// BreakdownVia runs the critical-factor search with each probe fetching
// the workload's plan through the pipeline builder: only the WCET
// scaling changes between probes, so with a plan cache on b the
// workload is planned once and every later probe is a cache hit —
// without one, every probe re-plans. This is the instrumented path the
// experiment harness and the pipeline benchmarks use; BreakdownFactor
// remains the primitive for callers that already hold a plan.
func BreakdownVia(b *pipeline.Builder, spec pipeline.Spec, opt BreakdownOptions) (Breakdown, error) {
	return BreakdownViaContext(context.Background(), b, spec, opt)
}

// BreakdownViaContext is BreakdownVia under a cancellation context: the
// context gates every bisection probe and propagates into the pipeline
// builds, so an abandoned study workload stops probing at the next
// bracket step instead of running the search to its tolerance.
func BreakdownViaContext(ctx context.Context, b *pipeline.Builder, spec pipeline.Spec,
	opt BreakdownOptions) (Breakdown, error) {

	opt = opt.withDefaults()
	return bisect(ctx, opt, func(factor float64) (bool, error) {
		plan, err := b.BuildContext(ctx, spec)
		if err != nil {
			return false, err
		}
		g, p := plan.Graph, plan.Platform
		tr := faults.ZeroTrace(g.NumTasks(), p.M())
		for i := range tr.ExecScale {
			tr.ExecScale[i] = factor
		}
		ir, err := sim.Inject(g, p, plan.Assignment, plan.Schedule,
			sim.Options{Faults: tr, Reclaim: opt.Reclaim})
		if err != nil {
			return false, err
		}
		return ir.Degradation.Misses == 0, nil
	})
}

// bisect runs the survive/fail bracket search shared by BreakdownFactor
// and BreakdownVia, checking ctx before every probe. opt must already
// have defaults applied.
func bisect(ctx context.Context, opt BreakdownOptions, probe func(factor float64) (bool, error)) (Breakdown, error) {
	var b Breakdown
	inner := probe
	probe = func(factor float64) (bool, error) {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		return inner(factor)
	}
	ok, err := probe(1)
	if err != nil {
		return b, err
	}
	b.SurvivesNominal = ok
	lo, hi := 0.0, 1.0
	if ok {
		okMax, err := probe(opt.MaxFactor)
		if err != nil {
			return b, err
		}
		if okMax {
			b.Factor = opt.MaxFactor
			b.Unbounded = true
			return b, nil
		}
		lo, hi = 1, opt.MaxFactor
	} else {
		okZero, err := probe(0)
		if err != nil {
			return b, err
		}
		if !okZero {
			// Even instantaneous execution misses a window: the
			// assignment is over-constrained, there is no margin at all.
			b.Factor = 0
			return b, nil
		}
	}
	for hi-lo > opt.Tol {
		mid := (lo + hi) / 2
		ok, err := probe(mid)
		if err != nil {
			return b, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	b.Factor = lo
	return b, nil
}

// ResliceOptions bounds the adaptive re-slicing feedback loop.
type ResliceOptions struct {
	// MaxRetries bounds the number of re-slice rounds (default 4).
	MaxRetries int
	// Backoff multiplies the estimate-inflation factor after each failed
	// round (default 1.25): the first correction trusts the observations,
	// later ones pad them, so persistent failures converge toward
	// pessimism instead of oscillating.
	Backoff float64
	// Reclaim additionally runs the online slack-reclamation policy
	// inside every injected execution.
	Reclaim bool
	// Pipe optionally supplies a shared plan cache and instrumentation
	// recorder the loop's re-planning rounds go through; with a cache
	// shared with the caller, round 0 reuses the caller's nominal plan.
	Pipe pipeline.Shared
}

func (o ResliceOptions) withDefaults() ResliceOptions {
	if o.MaxRetries <= 0 {
		o.MaxRetries = 4
	}
	if o.Backoff <= 1 {
		o.Backoff = 1.25
	}
	return o
}

// ResliceResult reports one feedback loop.
type ResliceResult struct {
	// Iterations is the number of re-slice rounds performed; 0 means the
	// initial assignment already survived (or nothing could be learned).
	Iterations int
	// Recovered reports that the final injected execution met every
	// deadline of its (re-sliced) assignment — and therefore every
	// end-to-end deadline, which re-slicing never extends.
	Recovered bool
	// OverConstrained reports that estimate inflation grew past what the
	// end-to-end deadlines can accommodate, ending the loop early.
	OverConstrained bool
	// Assignment and Estimates are the final re-sliced assignment and
	// the corrected estimates it was derived from.
	Assignment *slicing.Assignment
	Estimates  []rtime.Time
	// Final is the injected execution of the final assignment (its
	// Degradation.Reclamations counts online recoveries, reported
	// alongside the offline re-slice Iterations).
	Final *sim.InjectedReport
	// Rebuilds counts the correction rounds re-planned incrementally
	// through pipeline.Rebuild (round 0 is a plain build); RebuildHits
	// the subset answered from cache residency.
	Rebuilds, RebuildHits int
}

// ResliceLoop executes the estimate→slice→schedule→inject pipeline under
// the fault trace tr, and while the run misses deadlines, feeds the
// *observed* execution times back as corrected estimates and re-slices:
//
//	est′ᵢ = max(estᵢ, ⌈inflate · observedᵢ⌉)   inflate = Backoff^round
//
// The loop stops when the run is clean, when no observation exceeds its
// estimate (the misses are not the estimates' fault), when re-slicing
// becomes over-constrained (the corrected load no longer fits the
// end-to-end deadlines), or after MaxRetries rounds. Deadline misses in
// every round are judged against that round's assignment, whose output
// windows never exceed the end-to-end deadlines.
func ResliceLoop(g *taskgraph.Graph, p *arch.Platform, est []rtime.Time,
	metric slicing.Metric, params slicing.Params, tr *faults.Trace,
	opt ResliceOptions) (*ResliceResult, error) {

	return ResliceLoopContext(context.Background(), g, p, est, metric, params, tr, opt)
}

// ResliceLoopContext is ResliceLoop under a cancellation context: the
// context gates every feedback round and propagates into the pipeline
// builds, so an abandoned study workload stops re-planning instead of
// burning its remaining retries.
func ResliceLoopContext(ctx context.Context, g *taskgraph.Graph, p *arch.Platform,
	est []rtime.Time, metric slicing.Metric, params slicing.Params, tr *faults.Trace,
	opt ResliceOptions) (*ResliceResult, error) {

	opt = opt.withDefaults()
	if len(est) != g.NumTasks() {
		return nil, fmt.Errorf("robust: %d estimates for %d tasks", len(est), g.NumTasks())
	}
	b := &pipeline.Builder{
		Distributor: deadline.Sliced{Metric: metric, Params: params},
		Cache:       opt.Pipe.Cache,
		Recorder:    opt.Pipe.Recorder,
	}
	rp := b.NewReplanner()
	cur := append([]rtime.Time(nil), est...)
	inflate := 1.0
	res := &ResliceResult{}
	var plan *pipeline.Plan
	for round := 0; ; round++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		if round == 0 {
			plan, err = b.BuildContext(ctx, pipeline.Spec{Graph: g, Platform: p, Estimates: cur})
		} else {
			// Correction rounds change only the estimate vector, so they
			// re-plan incrementally off the previous round's plan instead
			// of keying a fresh cold build.
			var outcome pipeline.RebuildOutcome
			plan, outcome, err = rp.RebuildContext(ctx, plan, pipeline.EstimatesDelta(cur))
			if err == nil {
				res.Rebuilds++
				if outcome == pipeline.RebuildHit {
					res.RebuildHits++
				}
			}
		}
		if err != nil {
			return nil, err
		}
		asg := plan.Assignment
		ir, err := sim.Inject(g, p, asg, plan.Schedule, sim.Options{Faults: tr, Reclaim: opt.Reclaim})
		if err != nil {
			return nil, err
		}
		res.Iterations = round
		res.Assignment = asg
		res.Estimates = plan.Estimates
		res.Final = ir
		if ir.Degradation.Misses == 0 {
			res.Recovered = true
			return res, nil
		}
		if asg.OverConstrained {
			res.OverConstrained = true
			return res, nil
		}
		if round >= opt.MaxRetries {
			return res, nil
		}
		// Correct the estimates from what actually executed.
		changed := false
		next := append([]rtime.Time(nil), cur...)
		for i := range next {
			pl := ir.Executed.Placements[i]
			if pl.Proc < 0 {
				continue
			}
			obs := pl.Finish - pl.Start
			if obs <= cur[i] {
				continue
			}
			c := rtime.Time(math.Ceil(inflate * float64(obs)))
			if c > next[i] {
				next[i] = c
				changed = true
			}
		}
		if !changed {
			return res, nil
		}
		cur = next
		inflate *= opt.Backoff
	}
}
