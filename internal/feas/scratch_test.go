package feas

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// InfeasibleScratch must agree with Infeasible verdict-for-verdict,
// including over a reused scratch, across workloads that hit all three
// conditions (tight OLR forces violations, resources exercise
// condition 3).
func TestInfeasibleScratchMatchesCheck(t *testing.T) {
	sc := &Scratch{}
	rng := rand.New(rand.NewSource(9))
	sawBad, sawGood := false, false
	for seed := int64(0); seed < 40; seed++ {
		cfg := gen.Default(2 + rng.Intn(3))
		cfg.Seed = seed
		cfg.OLR = 0.2 + rng.Float64()*0.8
		if seed%3 == 0 {
			cfg.NumResources = 2
			cfg.ResourceProb = 0.5
		}
		w, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			t.Fatal(err)
		}
		asg, err := slicing.Distribute(w.Graph, est, cfg.M, slicing.AdaptR(), slicing.CalibratedParams())
		if err != nil {
			t.Fatal(err)
		}
		want, err1 := Infeasible(w.Graph, w.Platform, asg)
		got, err2 := InfeasibleScratch(w.Graph, w.Platform, asg, sc)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("seed %d: err %v vs %v", seed, err1, err2)
		}
		if err1 == nil && want != got {
			t.Fatalf("seed %d: Infeasible=%v InfeasibleScratch=%v", seed, want, got)
		}
		if want {
			sawBad = true
		} else {
			sawGood = true
		}
	}
	if !sawBad || !sawGood {
		t.Fatalf("weak coverage: sawBad=%v sawGood=%v — adjust OLR range", sawBad, sawGood)
	}
}
