// Package feas provides fast necessary feasibility tests for a window
// assignment — certificates of infeasibility that need no scheduling
// search. They complement the exact search in package optsched: feas
// can only say "provably infeasible" or "maybe feasible", but it says
// it in O(n²) instead of exponential time, which lets experiments
// classify the bulk of metric-caused failures cheaply.
//
// Three conditions are checked, all classical demand arguments:
//
//   - Window capacity: a task must fit its own window (c̄ᵢ ≤ dᵢ, using
//     the smallest eligible-and-present WCET).
//   - Processor demand: for every interval [a, b) spanned by window
//     boundaries, the total minimal work of tasks whose windows nest
//     inside [a, b) cannot exceed m·(b − a).
//   - Resource demand: for every exclusive resource and interval, the
//     minimal work of nested holder windows cannot exceed (b − a).
//
// All three are necessary for any schedule — preemptive or not, with or
// without migration — so a feas violation is a property of the deadline
// distribution alone.
package feas

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Violation describes one failed necessary condition.
type Violation struct {
	// Kind is "window", "processors", or "resource".
	Kind string
	// Task is the offending task for window violations, -1 otherwise.
	Task int
	// Resource is the resource index for resource violations, -1
	// otherwise.
	Resource int
	// Interval is the overloaded interval.
	Interval rtime.Window
	// Demand and Capacity quantify the overload.
	Demand, Capacity rtime.Time
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	switch v.Kind {
	case "window":
		return fmt.Sprintf("task %d needs %d units but its window %v holds %d",
			v.Task, v.Demand, v.Interval, v.Capacity)
	case "resource":
		return fmt.Sprintf("resource %d: demand %d exceeds capacity %d in %v",
			v.Resource, v.Demand, v.Capacity, v.Interval)
	case "processors":
		return fmt.Sprintf("processors: demand %d exceeds capacity %d in %v",
			v.Demand, v.Capacity, v.Interval)
	}
	return fmt.Sprintf("unknown kind %q: demand %d, capacity %d in %v",
		v.Kind, v.Demand, v.Capacity, v.Interval)
}

// Check runs all necessary conditions and returns every violation
// found (empty means the assignment *may* be feasible).
func Check(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) ([]Violation, error) {
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return nil, fmt.Errorf("feas: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	present := p.ClassesPresent()

	// Minimal execution time per task over eligible present classes.
	minC := make([]rtime.Time, n)
	for i, t := range g.Tasks() {
		best := rtime.Infinity
		if t.Pinned >= 0 {
			if t.Pinned < p.M() {
				if c := t.WCET[p.ClassOf(t.Pinned)]; c.IsSet() {
					best = c
				}
			}
		} else {
			for k, c := range t.WCET {
				if c.IsSet() && k < len(present) && present[k] && c < best {
					best = c
				}
			}
		}
		if best == rtime.Infinity {
			return nil, fmt.Errorf("feas: task %d eligible on no present class", i)
		}
		minC[i] = best
	}

	var out []Violation

	// Condition 1: own-window capacity.
	for i := 0; i < n; i++ {
		w := rtime.Window{Arrival: asg.Arrival[i], Deadline: asg.AbsDeadline[i]}
		if minC[i] > w.Len() {
			out = append(out, Violation{
				Kind: "window", Task: i, Resource: -1,
				Interval: w, Demand: minC[i], Capacity: w.Len(),
			})
		}
	}

	// Boundary set for interval enumeration.
	bset := map[rtime.Time]bool{}
	for i := 0; i < n; i++ {
		bset[asg.Arrival[i]] = true
		bset[asg.AbsDeadline[i]] = true
	}
	bounds := make([]rtime.Time, 0, len(bset))
	for b := range bset {
		bounds = append(bounds, b)
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })

	// Condition 2: processor demand over every boundary interval.
	m := rtime.Time(p.M())
	demandIn := func(a, b rtime.Time, filter func(i int) bool) rtime.Time {
		var d rtime.Time
		for i := 0; i < n; i++ {
			if asg.Arrival[i] >= a && asg.AbsDeadline[i] <= b && asg.AbsDeadline[i] > asg.Arrival[i] {
				if filter == nil || filter(i) {
					d += minC[i]
				}
			}
		}
		return d
	}
	for ai := 0; ai < len(bounds); ai++ {
		for bi := ai + 1; bi < len(bounds); bi++ {
			a, b := bounds[ai], bounds[bi]
			cap := m * (b - a)
			if d := demandIn(a, b, nil); d > cap {
				out = append(out, Violation{
					Kind: "processors", Task: -1, Resource: -1,
					Interval: rtime.Window{Arrival: a, Deadline: b},
					Demand:   d, Capacity: cap,
				})
			}
		}
	}

	// Condition 3: per-resource demand (capacity 1 per time unit).
	resMax := -1
	for _, t := range g.Tasks() {
		for _, r := range t.Resources {
			if r > resMax {
				resMax = r
			}
		}
	}
	for r := 0; r <= resMax; r++ {
		holds := func(i int) bool {
			for _, rr := range g.Task(i).Resources {
				if rr == r {
					return true
				}
			}
			return false
		}
		for ai := 0; ai < len(bounds); ai++ {
			for bi := ai + 1; bi < len(bounds); bi++ {
				a, b := bounds[ai], bounds[bi]
				if d := demandIn(a, b, holds); d > b-a {
					out = append(out, Violation{
						Kind: "resource", Task: -1, Resource: r,
						Interval: rtime.Window{Arrival: a, Deadline: b},
						Demand:   d, Capacity: b - a,
					})
				}
			}
		}
	}
	return out, nil
}

// Infeasible reports whether the assignment is provably unschedulable.
func Infeasible(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment) (bool, error) {
	v, err := Check(g, p, asg)
	if err != nil {
		return false, err
	}
	return len(v) > 0, nil
}
