package feas

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/arch"
	"repro/internal/gen"
	"repro/internal/optsched"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/wcet"
)

func c1(v rtime.Time) []rtime.Time { return []rtime.Time{v} }

func manual(arr, dl []rtime.Time) *slicing.Assignment {
	rel := make([]rtime.Time, len(arr))
	for i := range rel {
		rel[i] = dl[i] - arr[i]
	}
	return &slicing.Assignment{Arrival: arr, AbsDeadline: dl, RelDeadline: rel}
}

func TestWindowViolation(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(10), 0)
	g.MustFreeze()
	v, err := Check(g, arch.Homogeneous(1), manual([]rtime.Time{0}, []rtime.Time{9}))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) == 0 || v[0].Kind != "window" || v[0].Task != 0 {
		t.Fatalf("violations = %v", v)
	}
	if v[0].String() == "" {
		t.Error("empty rendering")
	}
}

func TestProcessorDemandViolation(t *testing.T) {
	// Three 10-unit tasks nested in a 25-unit interval on one processor:
	// demand 30 > capacity 25, though each individual window fits.
	g := taskgraph.NewGraph(1)
	for i := 0; i < 3; i++ {
		g.MustAddTask("", c1(10), 0)
	}
	g.MustFreeze()
	v, err := Check(g, arch.Homogeneous(1),
		manual([]rtime.Time{0, 0, 0}, []rtime.Time{25, 25, 25}))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, vi := range v {
		if vi.Kind == "processors" && vi.Demand == 30 && vi.Capacity == 25 {
			found = true
		}
	}
	if !found {
		t.Errorf("processor overload not certified: %v", v)
	}
	// The same windows on two processors are fine.
	v2, err := Check(g, arch.Homogeneous(2),
		manual([]rtime.Time{0, 0, 0}, []rtime.Time{25, 25, 25}))
	if err != nil {
		t.Fatal(err)
	}
	if len(v2) != 0 {
		t.Errorf("false positive on 2 processors: %v", v2)
	}
}

func TestResourceDemandViolation(t *testing.T) {
	// Two 10-unit holders of one resource nested in a 15-unit interval:
	// resource demand 20 > 15 even with unlimited processors.
	g := taskgraph.NewGraph(1)
	a := g.MustAddTask("", c1(10), 0)
	b := g.MustAddTask("", c1(10), 0)
	a.Resources = []int{0}
	b.Resources = []int{0}
	g.MustFreeze()
	v, err := Check(g, arch.Homogeneous(8),
		manual([]rtime.Time{0, 0}, []rtime.Time{15, 15}))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, vi := range v {
		if vi.Kind == "resource" && vi.Resource == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("resource overload not certified: %v", v)
	}
}

func TestHeterogeneousUsesMinimalWCET(t *testing.T) {
	// WCET 20 on class 0, 8 on class 1; only class 1 present. Window of
	// 10 fits the class-1 time.
	g := taskgraph.NewGraph(2)
	g.MustAddTask("", []rtime.Time{20, 8}, 0)
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated, []arch.Class{{}, {}}, []int{1}, arch.Bus{DelayPerItem: 1})
	v, err := Check(g, p, manual([]rtime.Time{0}, []rtime.Time{10}))
	if err != nil {
		t.Fatal(err)
	}
	if len(v) != 0 {
		t.Errorf("min-WCET not used: %v", v)
	}
}

func TestUnplaceableTaskErrors(t *testing.T) {
	g := taskgraph.NewGraph(2)
	g.MustAddTask("", []rtime.Time{10, rtime.Unset}, 0)
	g.MustFreeze()
	p := arch.MustNew(arch.Unrelated, []arch.Class{{}, {}}, []int{1}, arch.Bus{DelayPerItem: 1})
	if _, err := Check(g, p, manual([]rtime.Time{0}, []rtime.Time{10})); err == nil {
		t.Error("unsatisfiable eligibility should error")
	}
}

// Soundness: feas must never call an assignment infeasible that the
// exact scheduler can realize. (The other direction does not hold —
// feas is only a necessary condition.)
func TestNeverContradictsExactScheduler(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := gen.Default(2 + rng.Intn(2))
		cfg.Seed = seed
		cfg.MinTasks, cfg.MaxTasks = 6, 10
		cfg.MinDepth, cfg.MaxDepth = 2, 4
		cfg.OLR = 0.35 + rng.Float64()*0.5
		w, err := gen.Generate(cfg)
		if err != nil {
			return false
		}
		est, err := wcet.Estimates(w.Graph, w.Platform, wcet.AVG)
		if err != nil {
			return false
		}
		asg, err := slicing.Distribute(w.Graph, est, w.Platform.M(), slicing.PURE(), slicing.CalibratedParams())
		if err != nil {
			return false
		}
		bad, err := Infeasible(w.Graph, w.Platform, asg)
		if err != nil {
			return false
		}
		if !bad {
			return true // "maybe feasible" claims nothing
		}
		res, err := optsched.Schedule(w.Graph, w.Platform, asg,
			optsched.Options{NodeBudget: 400_000, StopAtFeasible: true})
		if err != nil {
			return false
		}
		if res.Schedule != nil && res.Schedule.Feasible {
			t.Logf("seed %d: feas said infeasible, exact found a schedule", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestCheckValidation(t *testing.T) {
	g := taskgraph.NewGraph(1)
	g.MustAddTask("", c1(5), 0)
	g.MustFreeze()
	if _, err := Check(g, arch.Homogeneous(1), manual(nil, nil)); err == nil {
		t.Error("short assignment accepted")
	}
}

func TestViolationStringAllKinds(t *testing.T) {
	iv := rtime.Window{Arrival: 3, Deadline: 9}
	cases := []struct {
		name string
		v    Violation
		want string
	}{
		{
			name: "window",
			v:    Violation{Kind: "window", Task: 4, Resource: -1, Interval: iv, Demand: 8, Capacity: 6},
			want: "task 4 needs 8 units but its window [3, 9) holds 6",
		},
		{
			name: "processors",
			v:    Violation{Kind: "processors", Task: -1, Resource: -1, Interval: iv, Demand: 20, Capacity: 12},
			want: "processors: demand 20 exceeds capacity 12 in [3, 9)",
		},
		{
			name: "resource",
			v:    Violation{Kind: "resource", Task: -1, Resource: 2, Interval: iv, Demand: 7, Capacity: 6},
			want: "resource 2: demand 7 exceeds capacity 6 in [3, 9)",
		},
		{
			name: "unknown",
			v:    Violation{Kind: "bandwidth", Task: -1, Resource: -1, Interval: iv, Demand: 5, Capacity: 4},
			want: `unknown kind "bandwidth": demand 5, capacity 4 in [3, 9)`,
		},
		{
			name: "empty kind",
			v:    Violation{Kind: "", Task: -1, Resource: -1, Interval: iv, Demand: 5, Capacity: 4},
			want: `unknown kind "": demand 5, capacity 4 in [3, 9)`,
		},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("%s: String() = %q, want %q", c.name, got, c.want)
		}
	}
}
