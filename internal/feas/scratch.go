package feas

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/rtime"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
)

// Scratch is reusable working memory for InfeasibleScratch: the per-task
// minimal-WCET table and the window-boundary list. A zero Scratch is
// ready to use; it grows to the largest graph it has seen. Not safe for
// concurrent use — pool instances (pipeline.BuildScratch does) instead
// of sharing one.
type Scratch struct {
	minC   []rtime.Time
	bounds []rtime.Time
}

// InfeasibleScratch is Infeasible running over reusable scratch memory
// (nil allocates internally) and returning at the first violated
// condition instead of enumerating all of them. The verdict — and any
// error — is identical to Infeasible's.
func InfeasibleScratch(g *taskgraph.Graph, p *arch.Platform, asg *slicing.Assignment, sc *Scratch) (bool, error) {
	n := g.NumTasks()
	if len(asg.Arrival) != n || len(asg.AbsDeadline) != n {
		return false, fmt.Errorf("feas: assignment covers %d tasks, graph has %d", len(asg.Arrival), n)
	}
	if sc == nil {
		sc = &Scratch{}
	}
	present := p.ClassesPresent()

	if cap(sc.minC) < n {
		sc.minC = make([]rtime.Time, n)
	}
	minC := sc.minC[:n]
	for i, t := range g.Tasks() {
		best := rtime.Infinity
		if t.Pinned >= 0 {
			if t.Pinned < p.M() {
				if c := t.WCET[p.ClassOf(t.Pinned)]; c.IsSet() {
					best = c
				}
			}
		} else {
			for k, c := range t.WCET {
				if c.IsSet() && k < len(present) && present[k] && c < best {
					best = c
				}
			}
		}
		if best == rtime.Infinity {
			return false, fmt.Errorf("feas: task %d eligible on no present class", i)
		}
		minC[i] = best
	}

	// Condition 1: own-window capacity.
	for i := 0; i < n; i++ {
		if minC[i] > asg.AbsDeadline[i]-asg.Arrival[i] {
			return true, nil
		}
	}

	// Boundary set: sort the 2n window edges and dedupe in place (Check
	// uses a map; the sorted-slice form allocates nothing on reuse).
	if cap(sc.bounds) < 2*n {
		sc.bounds = make([]rtime.Time, 2*n)
	}
	bounds := sc.bounds[:0]
	for i := 0; i < n; i++ {
		bounds = append(bounds, asg.Arrival[i], asg.AbsDeadline[i])
	}
	sort.Slice(bounds, func(a, b int) bool { return bounds[a] < bounds[b] })
	k := 0
	for i, b := range bounds {
		if i == 0 || b != bounds[k-1] {
			bounds[k] = b
			k++
		}
	}
	bounds = bounds[:k]

	demandIn := func(a, b rtime.Time, filter func(i int) bool) rtime.Time {
		var d rtime.Time
		for i := 0; i < n; i++ {
			if asg.Arrival[i] >= a && asg.AbsDeadline[i] <= b && asg.AbsDeadline[i] > asg.Arrival[i] {
				if filter == nil || filter(i) {
					d += minC[i]
				}
			}
		}
		return d
	}

	// Condition 2: processor demand over every boundary interval.
	m := rtime.Time(p.M())
	for ai := 0; ai < len(bounds); ai++ {
		for bi := ai + 1; bi < len(bounds); bi++ {
			a, b := bounds[ai], bounds[bi]
			if demandIn(a, b, nil) > m*(b-a) {
				return true, nil
			}
		}
	}

	// Condition 3: per-resource demand (capacity 1 per time unit).
	resMax := -1
	for _, t := range g.Tasks() {
		for _, r := range t.Resources {
			if r > resMax {
				resMax = r
			}
		}
	}
	for r := 0; r <= resMax; r++ {
		holds := func(i int) bool {
			for _, rr := range g.Task(i).Resources {
				if rr == r {
					return true
				}
			}
			return false
		}
		for ai := 0; ai < len(bounds); ai++ {
			for bi := ai + 1; bi < len(bounds); bi++ {
				a, b := bounds[ai], bounds[bi]
				if demandIn(a, b, holds) > b-a {
					return true, nil
				}
			}
		}
	}
	return false, nil
}
