package server

import (
	"net/http"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
)

// Router wires a Server into a pland fleet: the consistent-hash ring
// that assigns every workload fingerprint an owner, the fault-tolerant
// client used to forward requests there, and this process's own peer
// name so it recognizes the keys it owns.
//
// Routing policy: a request whose fingerprint is owned by a live other
// peer is proxied to it (retry/hedge/breaker policy included), so each
// plan is built once fleet-wide and cache hits concentrate where the
// key lives. The forwarded request carries X-Plan-Routed, and a peer
// receiving a routed request always plans locally — one hop at most,
// never a forwarding loop. When the proxy exhausts its attempts (owner
// and fallbacks all unreachable), the receiving server plans locally
// rather than failing the request: worse cache locality beats an
// error.
type Router struct {
	// Ring maps fingerprints to peers.
	Ring *cluster.Ring
	// Client is the retry/hedge/breaker planning client.
	Client *client.Client
	// Self is this process's peer name on the ring.
	Self string
}

// target returns the peer this request should be served by: the first
// live peer in the key's preference order. The caller proxies when it
// is not Self.
func (rt *Router) target(key uint64) *cluster.Peer {
	return rt.Ring.Preference(key)[0]
}

// relay copies a proxied plan answer back to the requester.
func relay(w http.ResponseWriter, res *client.PlanResult) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Plan-Peer", res.Peer)
	w.WriteHeader(res.Status)
	_, _ = w.Write(res.Body)
}
