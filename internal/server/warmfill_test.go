package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/graphio"
	"repro/internal/pipeline"
)

// warmNode is one fleet member behind a swappable handler, so a test
// can black out a peer (drop connections) or restart it with a fresh
// Server at the same URL — the two failure shapes the warm-fill
// protocol exists for.
type warmNode struct {
	name string
	srv  *Server
	ts   *httptest.Server
	h    atomic.Value // http.HandlerFunc
}

func (n *warmNode) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n.h.Load().(http.HandlerFunc).ServeHTTP(w, r)
}

// boot replaces the node's Server with a fresh one (a cold restart at
// the same address) wired onto the given ring.
func (n *warmNode) boot(ring *cluster.Ring, sopt Options, copt client.Options) {
	srv := New(sopt)
	srv.opt.Router = &Router{Ring: ring, Client: client.New(ring, copt), Self: n.name}
	n.srv = srv
	n.h.Store(http.HandlerFunc(srv.Handler().ServeHTTP))
}

// blackout makes the node drop every connection, like a killed or
// partitioned process; restore undoes it without losing cache state.
func (n *warmNode) blackout() {
	n.h.Store(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	}))
}

func (n *warmNode) restore() {
	n.h.Store(http.HandlerFunc(n.srv.Handler().ServeHTTP))
}

// newWarmFleet boots n warmNodes on one ring.
func newWarmFleet(t *testing.T, n int, sopt Options, copt client.Options) ([]*warmNode, *cluster.Ring) {
	t.Helper()
	nodes := make([]*warmNode, n)
	specs := make([]string, n)
	for i := range nodes {
		nodes[i] = &warmNode{name: fmt.Sprintf("p%d", i)}
		nodes[i].ts = httptest.NewServer(nodes[i])
		t.Cleanup(nodes[i].ts.Close)
		specs[i] = fmt.Sprintf("p%d=%s", i, nodes[i].ts.URL)
	}
	peers, err := cluster.ParsePeers(joinComma(specs))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		nodes[i].boot(ring, sopt, copt)
	}
	return nodes, ring
}

// warmCopt is the client tuning warm-fill tests share: fail fast, no
// hedging, breakers out of the way.
func warmCopt() client.Options {
	return client.Options{
		AttemptTimeout:   2 * time.Second,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		BreakerThreshold: 100,
	}
}

// byName returns the named warmNode.
func byName(t *testing.T, nodes []*warmNode, name string) *warmNode {
	t.Helper()
	for _, n := range nodes {
		if n.name == name {
			return n
		}
	}
	t.Fatalf("no node named %s", name)
	return nil
}

// warmSeed finds a workload (seed in [100,200)) whose ring order starts
// with the wanted owner, returning the body and its cache key.
func warmSeed(t *testing.T, ring *cluster.Ring, srv *Server, owner string) ([]byte, pipeline.Key) {
	t.Helper()
	for seed := int64(100); seed < 200; seed++ {
		body := workloadBody(t, seed)
		g, p, err := graphio.ReadWorkload(bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		fp := pipeline.Fingerprint(g, p)
		if ring.Order(fp)[0].Name != owner {
			continue
		}
		// The cache key for the default /plan query, recovered by
		// building once on a throwaway server.
		scratch := New(Options{})
		sts := httptest.NewServer(scratch.Handler())
		if resp, raw := postPlan(t, sts, "", body); resp.StatusCode != http.StatusOK {
			sts.Close()
			t.Fatalf("scratch build: %d %s", resp.StatusCode, raw)
		}
		sts.Close()
		keys := scratch.cache.Keys()
		if len(keys) != 1 {
			t.Fatalf("scratch cache holds %d keys, want 1", len(keys))
		}
		return body, keys[0]
	}
	t.Fatalf("no seed in [100,200) owned by %s", owner)
	return nil, pipeline.Key{}
}

// TestCacheDigestFillEndpoints pins the wire protocol on one node: the
// digest enumerates resident keys, GET /cache/fill serves a plan whose
// bytes decode and verify, POST installs one, and the integrity check
// refuses tampered payloads.
func TestCacheDigestFillEndpoints(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := workloadBody(t, 60)
	if resp, raw := postPlan(t, ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, raw)
	}

	var dig digestResponse
	if err := json.Unmarshal([]byte(getText(t, ts.URL+"/cache/digest")), &dig); err != nil {
		t.Fatal(err)
	}
	if len(dig.Keys) != 1 {
		t.Fatalf("digest lists %d keys, want 1", len(dig.Keys))
	}
	key, err := pipeline.DecodeKeyParam(dig.Keys[0])
	if err != nil {
		t.Fatalf("digest token: %v", err)
	}
	if !srv.cache.Contains(key) {
		t.Fatal("digest token decodes to a key the cache does not hold")
	}

	resp, err := http.Get(ts.URL + "/cache/fill?key=" + dig.Keys[0])
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fill: %d %s", resp.StatusCode, raw)
	}
	var pj pipeline.PlanJSON
	if err := json.Unmarshal(raw, &pj); err != nil {
		t.Fatal(err)
	}
	plan, err := pipeline.DecodePlan(pj)
	if err != nil {
		t.Fatalf("served plan fails its own integrity check: %v", err)
	}
	if plan.Key != key {
		t.Fatal("served plan carries a different key than requested")
	}

	// A key the cache never held is a 404 miss, not an error.
	missing := key
	missing.Workload++
	resp, err = http.Get(ts.URL + "/cache/fill?key=" + pipeline.EncodeKeyParam(missing))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("fill of absent key: %d, want 404", resp.StatusCode)
	}
	if got := metricValue(t, scrape(t, ts), `pland_warmfill_fill_total{outcome="miss"}`); got != 1 {
		t.Fatalf("fill miss metric %g, want 1", got)
	}

	// POST installs the plan into a second, cold node; the same
	// workload then serves from cache without a build.
	other := New(Options{})
	ots := httptest.NewServer(other.Handler())
	defer ots.Close()
	resp, err = http.Post(ots.URL+"/cache/fill", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("fill install: %d, want 204", resp.StatusCode)
	}
	if !other.cache.Contains(key) {
		t.Fatal("installed plan not resident")
	}
	if resp, raw := postPlan(t, ots, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm serve: %d %s", resp.StatusCode, raw)
	}
	text := scrape(t, ots)
	if got := metricValue(t, text, "pland_builds_total"); got != 0 {
		t.Fatalf("warm node built %g times, want 0", got)
	}
	if got := metricValue(t, text, "pland_cache_hits_total"); got != 1 {
		t.Fatalf("warm node hits %g, want 1", got)
	}
	if got := metricValue(t, text, `pland_warmfill_fill_total{outcome="accepted"}`); got != 1 {
		t.Fatalf("fill accepted metric %g, want 1", got)
	}

	// Tampered estimates flip the content hash: the install is refused
	// and nothing enters the cache.
	pj.Estimates[0]++
	tampered, err := json.Marshal(pj)
	if err != nil {
		t.Fatal(err)
	}
	before := other.cache.Len()
	resp, err = http.Post(ots.URL+"/cache/fill", "application/json", bytes.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("tampered fill: %d, want 422", resp.StatusCode)
	}
	if other.cache.Len() != before {
		t.Fatal("tampered plan entered the cache")
	}

	// Garbage key params and wrong methods are rejected cleanly.
	resp, err = http.Get(ts.URL + "/cache/fill?key=%21%21not-base64")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad key param: %d, want 422", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/cache/fill", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE /cache/fill: %d, want 405", resp.StatusCode)
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d %s", url, resp.StatusCode, raw)
	}
	return string(raw)
}

// TestWarmFillStandbyReplication: a warm-fill round copies each plan
// onto its rank-1 standby (and only there), so when the owner blacks
// out the re-routed requests hit a warm cache instead of rebuilding —
// the mechanism that removes blackout rebuilds from the chaos drill.
func TestWarmFillStandbyReplication(t *testing.T) {
	nodes, ring := newWarmFleet(t, 3, Options{}, warmCopt())
	body, key := warmSeed(t, ring, nodes[0].srv, "p0")
	order := ring.Order(key.Workload)
	owner := byName(t, nodes, order[0].Name)
	standby := byName(t, nodes, order[1].Name)
	last := byName(t, nodes, order[2].Name)

	if resp, raw := postPlan(t, owner.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner build: %d %s", resp.StatusCode, raw)
	}

	if n := standby.srv.WarmFillOnce(context.Background()); n != 1 {
		t.Fatalf("standby pulled %d plans, want 1", n)
	}
	if !standby.srv.cache.Contains(key) {
		t.Fatal("standby does not hold the replicated plan")
	}
	if got := metricValue(t, scrape(t, standby.ts), "pland_warmfill_pulled_total"); got != 1 {
		t.Fatalf("standby pulled metric %g, want 1", got)
	}
	// Rank 2 is outside the replication factor: it pulls nothing.
	if n := last.srv.WarmFillOnce(context.Background()); n != 0 {
		t.Fatalf("rank-2 peer pulled %d plans, want 0", n)
	}
	if last.srv.cache.Contains(key) {
		t.Fatal("rank-2 peer replicated a plan it should not hold")
	}

	// Blackout: the owner drops connections and is marked down. The
	// standby now serves the key from its pre-positioned copy — zero
	// new builds anywhere.
	owner.blackout()
	ring.ByName(owner.name).MarkDown()
	if resp, raw := postPlan(t, standby.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("blackout serve: %d %s", resp.StatusCode, raw)
	}
	text := scrape(t, standby.ts)
	if got := metricValue(t, text, "pland_builds_total"); got != 0 {
		t.Fatalf("standby rebuilt %g times during the blackout, want 0", got)
	}
	if got := metricValue(t, text, "pland_cache_hits_total"); got < 1 {
		t.Fatalf("standby hits %g, want >= 1", got)
	}
}

// TestWarmFillRestartRefill: a peer that restarts cold (empty cache)
// refills the keys it owns from its neighbors' digests before traffic
// needs them — the crash-recovery path when the snapshot is gone too.
func TestWarmFillRestartRefill(t *testing.T) {
	nodes, ring := newWarmFleet(t, 2, Options{}, warmCopt())
	body, key := warmSeed(t, ring, nodes[0].srv, "p0")
	owner := byName(t, nodes, "p0")
	peer := byName(t, nodes, "p1")

	if resp, raw := postPlan(t, owner.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner build: %d %s", resp.StatusCode, raw)
	}
	// The standby replicates first (in a 2-ring, p1 is rank 1).
	if n := peer.srv.WarmFillOnce(context.Background()); n != 1 {
		t.Fatalf("standby pulled %d, want 1", n)
	}

	// kill -9 + restart: a fresh Server at the same URL, cache empty.
	owner.boot(ring, Options{}, warmCopt())
	if owner.srv.cache.Contains(key) {
		t.Fatal("restarted owner is not cold")
	}
	if n := owner.srv.WarmFillOnce(context.Background()); n != 1 {
		t.Fatalf("restarted owner pulled %d plans, want 1", n)
	}
	if !owner.srv.cache.Contains(key) {
		t.Fatal("restarted owner did not refill its owned key")
	}
	if resp, raw := postPlan(t, owner.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart serve: %d %s", resp.StatusCode, raw)
	}
	text := scrape(t, owner.ts)
	if got := metricValue(t, text, "pland_builds_total"); got != 0 {
		t.Fatalf("restarted owner rebuilt %g times, want 0", got)
	}
}

// TestReadThroughFallback models the blackout hedge race: the owner
// goes dark without ever probing down (chaos leaves /healthz exempt),
// and a hedged request lands on the rank-2 peer — outside the
// replication set, so its cache is cold. The pre-build read-through
// must fetch the plan from the warm standby instead of rebuilding, and
// the per-workload cooldown must keep later sweeps from re-paying
// digest round-trips.
func TestReadThroughFallback(t *testing.T) {
	nodes, ring := newWarmFleet(t, 3, Options{}, warmCopt())
	body, key := warmSeed(t, ring, nodes[0].srv, "p0")
	order := ring.Order(key.Workload)
	owner := byName(t, nodes, order[0].Name)
	standby := byName(t, nodes, order[1].Name)
	last := byName(t, nodes, order[2].Name)

	if resp, raw := postPlan(t, owner.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner build: %d %s", resp.StatusCode, raw)
	}
	if n := standby.srv.WarmFillOnce(context.Background()); n != 1 {
		t.Fatalf("standby pulled %d plans, want 1", n)
	}

	// The owner drops every connection but its alive bit never flips —
	// exactly what the chaos blackout looks like to the prober.
	owner.blackout()

	post := func() {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, last.ts.URL+"/plan", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(routedHeader, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("hedged serve on rank-2 peer: %d", resp.StatusCode)
		}
	}
	post()

	text := scrape(t, last.ts)
	if got := metricValue(t, text, "pland_builds_total"); got != 0 {
		t.Fatalf("rank-2 peer cold-built %g times, want 0 (read-through)", got)
	}
	if got := metricValue(t, text, "pland_cache_hits_total"); got != 1 {
		t.Fatalf("rank-2 peer hits %g, want 1", got)
	}
	if got := metricValue(t, text, "pland_warmfill_readthrough_total"); got != 1 {
		t.Fatalf("read-through sweeps %g, want 1", got)
	}
	if got := metricValue(t, text, "pland_warmfill_pulled_total"); got != 1 {
		t.Fatalf("read-through pulled %g plans, want 1", got)
	}
	// The dark owner's digest fetch failed and was counted.
	if got := metricValue(t, text, "pland_warmfill_errors_total"); got < 1 {
		t.Fatalf("warm-fill errors %g, want >= 1 (owner digest)", got)
	}
	if !last.srv.cache.Contains(key) {
		t.Fatal("rank-2 peer did not install the fetched plan")
	}

	// A second request inside the cooldown window is a plain hit: no new
	// sweep fires.
	post()
	text = scrape(t, last.ts)
	if got := metricValue(t, text, "pland_warmfill_readthrough_total"); got != 1 {
		t.Fatalf("read-through sweeps %g after warm hit, want still 1", got)
	}
	if got := metricValue(t, text, "pland_cache_hits_total"); got != 2 {
		t.Fatalf("rank-2 peer hits %g, want 2", got)
	}
}

// TestHintedHandoff: a peer that served a key for an unreachable owner
// records a hint and pushes the plan back on the owner's rise verdict;
// hints are deduplicated and drained exactly once.
func TestHintedHandoff(t *testing.T) {
	nodes, ring := newWarmFleet(t, 2, Options{}, warmCopt())
	body, key := warmSeed(t, ring, nodes[0].srv, "p0")
	owner := byName(t, nodes, "p0")
	fallback := byName(t, nodes, "p1")

	owner.blackout()
	ring.ByName("p0").MarkDown()

	// Two identical requests against the fallback: it plans locally
	// (the owner is routed around) and records exactly one hint.
	for i := 0; i < 2; i++ {
		if resp, raw := postPlan(t, fallback.ts, "", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("fallback serve %d: %d %s", i, resp.StatusCode, raw)
		}
	}
	text := scrape(t, fallback.ts)
	if got := metricValue(t, text, "pland_warmfill_hints_total"); got != 1 {
		t.Fatalf("hints recorded %g, want 1 (deduplicated)", got)
	}
	if got := metricValue(t, text, "pland_warmfill_pending_hints"); got != 1 {
		t.Fatalf("pending hints %g, want 1", got)
	}

	// The owner rises; NoteRisen drains the hint asynchronously and the
	// plan lands in the owner's cache without the owner building it.
	owner.restore()
	ring.ByName("p0").MarkUp()
	fallback.srv.NoteRisen("p0")
	// Wait for the pusher's own counter, not just the owner-side
	// install: the install completes before PushFill returns to the
	// fallback, so polling the cache alone races the counter bump.
	deadline := time.Now().Add(5 * time.Second)
	for !owner.srv.cache.Contains(key) || fallback.srv.warmPushed.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("handoff never reached the risen owner")
		}
		time.Sleep(5 * time.Millisecond)
	}
	text = scrape(t, fallback.ts)
	if got := metricValue(t, text, "pland_warmfill_pushed_total"); got != 1 {
		t.Fatalf("pushed %g, want 1", got)
	}
	if got := metricValue(t, text, "pland_warmfill_pending_hints"); got != 0 {
		t.Fatalf("pending hints %g after drain, want 0", got)
	}
	otext := scrape(t, owner.ts)
	if got := metricValue(t, otext, `pland_warmfill_fill_total{outcome="accepted"}`); got != 1 {
		t.Fatalf("owner accepted %g fills, want 1", got)
	}
	if got := metricValue(t, otext, "pland_builds_total"); got != 0 {
		t.Fatalf("owner built %g times, want 0 (the handoff carried the plan)", got)
	}
	// The owner now serves its key warm.
	if resp, raw := postPlan(t, owner.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner warm serve: %d %s", resp.StatusCode, raw)
	}
	if got := metricValue(t, scrape(t, owner.ts), "pland_cache_hits_total"); got < 1 {
		t.Fatalf("owner hits %g, want >= 1", got)
	}
}

// TestHintedHandoffPeriodicDrain covers the blackout-without-death
// case: the owner never probes down (its /healthz stays exempt), so no
// rise verdict ever fires — the periodic warm-fill round is what
// delivers the hint.
func TestHintedHandoffPeriodicDrain(t *testing.T) {
	nodes, ring := newWarmFleet(t, 2, Options{}, warmCopt())
	body, key := warmSeed(t, ring, nodes[0].srv, "p0")
	owner := byName(t, nodes, "p0")
	fallback := byName(t, nodes, "p1")

	// The request reaches the fallback pre-routed (as a hedge or retry
	// would deliver it); the fallback plans and hints without the
	// owner's alive bit ever flipping.
	req, err := http.NewRequest(http.MethodPost, fallback.ts.URL+"/plan", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(routedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed fallback serve: %d", resp.StatusCode)
	}
	if got := metricValue(t, scrape(t, fallback.ts), "pland_warmfill_pending_hints"); got != 1 {
		t.Fatalf("pending hints %g, want 1", got)
	}

	fallback.srv.WarmFillOnce(context.Background())
	if !owner.srv.cache.Contains(key) {
		t.Fatal("periodic round did not deliver the hinted plan")
	}
	if got := metricValue(t, scrape(t, fallback.ts), "pland_warmfill_pending_hints"); got != 0 {
		t.Fatalf("pending hints %g after the round, want 0", got)
	}
}

// TestRingMembershipChange covers reshuffles: adding a peer keeps
// ownership a partition (exactly one owner and one standby per key),
// requests posted through nodes holding old and new ring views land on
// exactly one cached plan fleet-wide, and warm-fill rounds converge
// the digests so the new owner holds its keys.
func TestRingMembershipChange(t *testing.T) {
	// Four swappable nodes; the initial ring covers only the first
	// three (p3 is the peer about to join).
	nodes := make([]*warmNode, 4)
	specs := make([]string, 4)
	for i := range nodes {
		nodes[i] = &warmNode{name: fmt.Sprintf("p%d", i)}
		nodes[i].ts = httptest.NewServer(nodes[i])
		defer nodes[i].ts.Close()
		specs[i] = fmt.Sprintf("p%d=%s", i, nodes[i].ts.URL)
	}
	oldPeers, err := cluster.ParsePeers(joinComma(specs[:3]))
	if err != nil {
		t.Fatal(err)
	}
	oldRing, err := cluster.NewRing(oldPeers)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes[:3] {
		n.boot(oldRing, Options{}, warmCopt())
	}
	nodes[3].boot(oldRing, Options{}, warmCopt()) // placeholder until it joins

	// A key whose ownership moves with the reshuffle, so convergence is
	// actually exercised.
	newPeers, err := cluster.ParsePeers(joinComma(specs))
	if err != nil {
		t.Fatal(err)
	}
	newRing, err := cluster.NewRing(newPeers)
	if err != nil {
		t.Fatal(err)
	}
	var body []byte
	var key pipeline.Key
	for seed := int64(100); seed < 300; seed++ {
		b, k := func() ([]byte, pipeline.Key) {
			scratch := New(Options{})
			sts := httptest.NewServer(scratch.Handler())
			defer sts.Close()
			wb := workloadBody(t, seed)
			if resp, raw := postPlan(t, sts, "", wb); resp.StatusCode != http.StatusOK {
				t.Fatalf("scratch build: %d %s", resp.StatusCode, raw)
			}
			return wb, scratch.cache.Keys()[0]
		}()
		if oldRing.Owner(k.Workload).Name != newRing.Owner(k.Workload).Name {
			body, key = b, k
			break
		}
	}
	if body == nil {
		t.Fatal("no seed in [100,300) changes owner across the reshuffle")
	}
	oldOwner := byName(t, nodes, oldRing.Owner(key.Workload).Name)
	newOwner := byName(t, nodes, newRing.Owner(key.Workload).Name)

	// Build once on the old ring.
	if resp, raw := postPlan(t, oldOwner.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("old-ring build: %d %s", resp.StatusCode, raw)
	}

	// Rolling reconfiguration: re-ring every node onto the new view
	// without touching its cache (only the router is swapped, as a
	// -peers change with the same process would).
	for _, n := range nodes {
		n.srv.opt.Router = &Router{
			Ring:   newRing,
			Client: client.New(newRing, warmCopt()),
			Self:   n.name,
		}
	}

	// Ownership stays a partition after the reshuffle: every key has
	// exactly one rank-0 and one rank-1 node.
	for i := 0; i < 50; i++ {
		k := uint64(i) * 0x9e3779b97f4a7c15
		owners, standbys := 0, 0
		for _, n := range nodes {
			switch n.srv.replicaRank(k) {
			case 0:
				owners++
			case 1:
				standbys++
			}
		}
		if owners != 1 || standbys != 1 {
			t.Fatalf("key %d has %d owners and %d standbys, want exactly 1 each", i, owners, standbys)
		}
	}

	// Warm-fill rounds converge the reshuffled digests: the new owner
	// (and its standby) pull the plan from whoever held it.
	for round := 0; round < 2; round++ {
		for _, n := range nodes {
			n.srv.WarmFillOnce(context.Background())
		}
	}
	if !newOwner.srv.cache.Contains(key) {
		t.Fatal("new owner never converged onto its key")
	}

	// Requests through any node — including the joiner — are served
	// from the replicated plan: fleet-wide builds stay at exactly 1.
	for _, n := range nodes {
		if resp, raw := postPlan(t, n.ts, "", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s post-reshuffle serve: %d %s", n.name, resp.StatusCode, raw)
		}
	}
	var builds float64
	for _, n := range nodes {
		builds += metricValue(t, scrape(t, n.ts), "pland_builds_total")
	}
	if builds != 1 {
		t.Fatalf("fleet-wide builds = %g after the reshuffle, want exactly 1", builds)
	}
}

// TestSnapshotEndpointsDraining: a draining node answers its warm-fill
// endpoints with 503, so a joining peer cannot pull from (or push to) a
// cache that is about to disappear.
func TestSnapshotEndpointsDraining(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Drain()
	for _, url := range []string{ts.URL + "/cache/digest", ts.URL + "/cache/fill?key=x"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("GET %s while draining: %d, want 503", url, resp.StatusCode)
		}
	}
}

// TestServerSnapshotRoundTrip: SaveSnapshot/LoadSnapshot restore the
// hot set into a fresh server, which then serves without building.
func TestServerSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/cache.snap"
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	body := workloadBody(t, 61)
	if resp, raw := postPlan(t, ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("build: %d %s", resp.StatusCode, raw)
	}
	if n, err := srv.SaveSnapshot(path); err != nil || n != 1 {
		t.Fatalf("save: n=%d err=%v", n, err)
	}
	ts.Close()

	restarted := New(Options{})
	if n, err := restarted.LoadSnapshot(path); err != nil || n != 1 {
		t.Fatalf("load: n=%d err=%v", n, err)
	}
	rts := httptest.NewServer(restarted.Handler())
	defer rts.Close()
	if resp, raw := postPlan(t, rts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("restored serve: %d %s", resp.StatusCode, raw)
	}
	text := scrape(t, rts)
	if got := metricValue(t, text, "pland_builds_total"); got != 0 {
		t.Fatalf("restored server built %g times, want 0", got)
	}
	if got := metricValue(t, text, "pland_snapshot_loaded_plans_total"); got != 1 {
		t.Fatalf("loaded plans metric %g, want 1", got)
	}
	// A missing snapshot is a cold start, not an error.
	if n, err := New(Options{}).LoadSnapshot(dir + "/absent.snap"); err != nil || n != 0 {
		t.Fatalf("missing snapshot: n=%d err=%v", n, err)
	}
}

// TestReadThroughCooldownExpiry: one read-through sweep per fingerprint
// per cooldown window — a repeat miss inside the window is absorbed
// without any peer traffic, and once the entry ages out the next miss
// sweeps and refetches.
func TestReadThroughCooldownExpiry(t *testing.T) {
	nodes, ring := newWarmFleet(t, 2, Options{}, warmCopt())
	body, key := warmSeed(t, ring, nodes[0].srv, "p0")
	owner := byName(t, nodes, "p0")
	puller := byName(t, nodes, "p1")
	if resp, raw := postPlan(t, owner.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner build: %d %s", resp.StatusCode, raw)
	}

	ctx := context.Background()
	if n := puller.srv.warmReadThrough(ctx, key.Workload); n != 1 {
		t.Fatalf("first sweep pulled %d plans, want 1", n)
	}
	if got := puller.srv.warmReads.Load(); got != 1 {
		t.Fatalf("sweeps = %d, want 1", got)
	}

	// A miss inside the window stays local even when the plan is gone.
	puller.srv.cache.Purge()
	if n := puller.srv.warmReadThrough(ctx, key.Workload); n != 0 {
		t.Fatalf("in-window sweep pulled %d plans, want 0", n)
	}
	if got := puller.srv.warmReads.Load(); got != 1 {
		t.Fatalf("sweeps = %d after in-window miss, want still 1", got)
	}

	// Age the entry past the cooldown: the next miss sweeps again and
	// reinstalls the plan.
	puller.srv.readMu.Lock()
	puller.srv.readLast[key.Workload] = time.Now().Add(-2 * readThroughCooldown)
	puller.srv.readMu.Unlock()
	if n := puller.srv.warmReadThrough(ctx, key.Workload); n != 1 {
		t.Fatalf("post-expiry sweep pulled %d plans, want 1", n)
	}
	if got := puller.srv.warmReads.Load(); got != 2 {
		t.Fatalf("sweeps = %d after expiry, want 2", got)
	}
	if !puller.srv.cache.Contains(key) {
		t.Fatal("plan not reinstalled after the post-expiry sweep")
	}
}

// TestReadThroughCooldownConcurrent: simultaneous misses on one
// fingerprint collapse to exactly one sweep — the first caller stamps
// the cooldown entry under the lock before sweeping, so the rest see a
// fresh entry and return without touching any peer.
func TestReadThroughCooldownConcurrent(t *testing.T) {
	nodes, ring := newWarmFleet(t, 2, Options{}, warmCopt())
	body, key := warmSeed(t, ring, nodes[0].srv, "p0")
	owner := byName(t, nodes, "p0")
	puller := byName(t, nodes, "p1")
	if resp, raw := postPlan(t, owner.ts, "", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner build: %d %s", resp.StatusCode, raw)
	}

	const callers = 16
	var (
		wg     sync.WaitGroup
		pulled atomic.Int64
	)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pulled.Add(int64(puller.srv.warmReadThrough(context.Background(), key.Workload)))
		}()
	}
	wg.Wait()
	if got := pulled.Load(); got != 1 {
		t.Fatalf("concurrent sweeps pulled %d plans total, want 1", got)
	}
	if got := puller.srv.warmReads.Load(); got != 1 {
		t.Fatalf("sweeps = %d for %d concurrent misses, want 1", puller.srv.warmReads.Load(), callers)
	}
	if !puller.srv.cache.Contains(key) {
		t.Fatal("winning sweep did not install the plan")
	}
}
