package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/cluster/client"
	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/pipeline"
)

// TestCriticalityHeader pins the header's accept/reject surface.
func TestCriticalityHeader(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	body := workloadBody(t, 20)

	post := func(crit string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/plan", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if crit != "" {
			req.Header.Set(criticalityHeader, crit)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, ok := range []string{"", "mandatory", "optional", "  Optional "} {
		if got := post(ok); got != http.StatusOK {
			t.Errorf("criticality %q: status %d, want 200", ok, got)
		}
	}
	if got := post("best-effort"); got != http.StatusUnprocessableEntity {
		t.Errorf("bad criticality: status %d, want 422", got)
	}
}

// TestShedHysteresis drives the overload ladder end to end: queue depth
// crossing the high-water mark sheds Optional requests while Mandatory
// ones keep their queue seats, and once the queue drains below the
// low-water mark the optional tier is re-admitted.
func TestShedHysteresis(t *testing.T) {
	srv := New(Options{MaxInFlight: 1, MaxQueue: 4, ShedHighFrac: 0.5, ShedLowFrac: 0.25})
	srv.holdBuild = make(chan struct{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := workloadBody(t, 21)

	done := make(chan error, 3)
	post := func(crit string) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/plan", bytes.NewReader(body))
		if crit != "" {
			req.Header.Set(criticalityHeader, crit)
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
		}
		done <- err
	}
	// One request holds the slot; two more fill the queue to the
	// high-water mark (0.5 × 4 = 2).
	go post("")
	go post("mandatory")
	go post("mandatory")
	waitGauge(t, ts, "pland_queue_depth", 2)

	// Optional work is now shed up front with the pressure-derived hint.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/plan", bytes.NewReader(body))
	req.Header.Set(criticalityHeader, "optional")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("optional under pressure: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed 429 without Retry-After")
	}
	text := scrape(t, ts)
	if got := metricValue(t, text, "pland_shedding"); got != 1 {
		t.Fatalf("pland_shedding = %g, want 1", got)
	}
	if got := metricValue(t, text, `pland_shed_total{criticality="optional"}`); got != 1 {
		t.Fatalf("optional shed = %g, want 1", got)
	}

	// Mandatory work still gets a queue seat while shedding.
	go post("mandatory")
	waitGauge(t, ts, "pland_queue_depth", 3)

	// Drain the queue; depth 0 ≤ low-water releases the ladder, and the
	// optional tier is admitted again.
	close(srv.holdBuild)
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatalf("held request %d failed: %v", i, err)
		}
	}
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/plan", bytes.NewReader(body))
	req2.Header.Set(criticalityHeader, "optional")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("optional after drain: status %d, want 200", resp2.StatusCode)
	}
	if got := metricValue(t, scrape(t, ts), "pland_shedding"); got != 0 {
		t.Fatalf("pland_shedding = %g after drain, want 0", got)
	}
}

// TestRetryAfterJittered pins satellite behavior: the 429 hint scales
// with queue pressure and is jittered, never the constant base. With
// base 2s and a full queue the hint is 2s × 3 × [0.75, 1.25] → 5..8
// whole seconds, far from the un-scaled constant 2.
func TestRetryAfterJittered(t *testing.T) {
	srv := New(Options{MaxInFlight: 1, MaxQueue: 1, RetryAfter: 2 * time.Second, ShedHighFrac: -1})
	srv.holdBuild = make(chan struct{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	// LIFO: the held builds must be released before ts.Close waits on
	// their handlers.
	defer close(srv.holdBuild)
	body := workloadBody(t, 22)

	go http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
	go http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
	waitGauge(t, ts, "pland_queue_depth", 1)

	for i := 0; i < 5; i++ {
		resp, raw := postPlan(t, ts, "", body)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, raw)
		}
		secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err != nil {
			t.Fatalf("Retry-After %q: %v", resp.Header.Get("Retry-After"), err)
		}
		if secs < 5 || secs > 8 {
			t.Fatalf("Retry-After %ds outside the pressure-scaled jitter window [5, 8]", secs)
		}
	}
	if got := metricValue(t, scrape(t, ts), `pland_shed_total{criticality="mandatory"}`); got != 5 {
		t.Fatalf("mandatory shed = %g, want 5", got)
	}
}

// fleetNode is one pland process stand-in: a Server plus its listener.
type fleetNode struct {
	srv *Server
	ts  *httptest.Server
}

// newFleet boots n Servers, rings them together, and gives each a
// Router with the supplied client options.
func newFleet(t *testing.T, n int, sopt Options, copt client.Options) []fleetNode {
	t.Helper()
	nodes := make([]fleetNode, n)
	specs := make([]string, n)
	for i := range nodes {
		srv := New(sopt)
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(ts.Close)
		nodes[i] = fleetNode{srv: srv, ts: ts}
		specs[i] = fmt.Sprintf("p%d=%s", i, ts.URL)
	}
	peers, err := cluster.ParsePeers(joinComma(specs))
	if err != nil {
		t.Fatal(err)
	}
	ring, err := cluster.NewRing(peers)
	if err != nil {
		t.Fatal(err)
	}
	for i := range nodes {
		nodes[i].srv.opt.Router = &Router{
			Ring:   ring,
			Client: client.New(ring, copt),
			Self:   fmt.Sprintf("p%d", i),
		}
	}
	return nodes
}

func joinComma(ss []string) string {
	out := ""
	for i, s := range ss {
		if i > 0 {
			out += ","
		}
		out += s
	}
	return out
}

// keyOwner computes which fleet peer owns a workload seed's fingerprint.
func keyOwner(t *testing.T, nodes []fleetNode, seed int64) (string, []byte) {
	t.Helper()
	cfg := gen.Default(3)
	cfg.Seed = seed
	w := gen.MustGenerate(cfg)
	var buf bytes.Buffer
	if err := graphio.WriteWorkload(&buf, w.Graph, w.Platform); err != nil {
		t.Fatal(err)
	}
	key := pipeline.Fingerprint(w.Graph, w.Platform)
	return nodes[0].srv.opt.Router.Ring.Owner(key).Name, buf.Bytes()
}

// seedOwnedBy searches generator seeds until the workload's fingerprint
// is owned by the wanted peer.
func seedOwnedBy(t *testing.T, nodes []fleetNode, want string) []byte {
	t.Helper()
	for seed := int64(100); seed < 200; seed++ {
		owner, body := keyOwner(t, nodes, seed)
		if owner == want {
			return body
		}
	}
	t.Fatalf("no seed in [100,200) owned by %s", want)
	return nil
}

// TestFleetRoutingExactlyOneBuild is the fleet-wide coalescing
// contract: clients hammering every node with the identical workload
// cause exactly one cold build across the whole fleet, because every
// node routes the fingerprint to its ring owner and the owner's
// singleflight coalesces.
func TestFleetRoutingExactlyOneBuild(t *testing.T) {
	nodes := newFleet(t, 3, Options{}, client.Options{AttemptTimeout: 10 * time.Second})
	body := seedOwnedBy(t, nodes, "p0")

	const perNode = 4
	var wg sync.WaitGroup
	errs := make(chan error, perNode*len(nodes))
	for _, n := range nodes {
		for i := 0; i < perNode; i++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				resp, err := http.Post(url+"/plan", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, raw)
				}
			}(n.ts.URL)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	var builds, routedIn float64
	for i, n := range nodes {
		text := scrape(t, n.ts)
		builds += metricValue(t, text, "pland_builds_total")
		routedIn += metricValue(t, text, `pland_routed_total{direction="in"}`)
		if i > 0 {
			if out := metricValue(t, text, `pland_routed_total{direction="out"}`); out != perNode {
				t.Errorf("p%d routed out %g requests, want %d", i, out, perNode)
			}
		}
	}
	if builds != 1 {
		t.Fatalf("fleet-wide cold builds = %g, want exactly 1", builds)
	}
	if routedIn != 2*perNode {
		t.Fatalf("routed-in total = %g, want %d", routedIn, 2*perNode)
	}
	// Fleet mode surfaces the client and breaker state in /metrics.
	text := scrape(t, nodes[1].ts)
	if got := metricValue(t, text, `pland_peer_breaker_state{peer="p0"}`); got != 0 {
		t.Fatalf("p0 breaker state %g, want 0 (closed)", got)
	}
	if got := metricValue(t, text, "pland_client_attempts_total"); got < perNode {
		t.Fatalf("client attempts %g, want >= %d", got, perNode)
	}
}

// TestFleetFallbackPlansLocally: when the owning peer is unreachable
// and the proxy exhausts its attempts, the receiving node plans the
// request itself rather than failing it.
func TestFleetFallbackPlansLocally(t *testing.T) {
	nodes := newFleet(t, 3, Options{}, client.Options{
		AttemptTimeout: time.Second,
		MaxAttempts:    1, // the single attempt goes to the dead owner
		BaseBackoff:    time.Millisecond,
	})
	body := seedOwnedBy(t, nodes, "p0")
	nodes[0].ts.Close() // the owner is gone

	resp, err := http.Post(nodes[1].ts.URL+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fallback plan: status %d: %s", resp.StatusCode, raw)
	}
	text := scrape(t, nodes[1].ts)
	if got := metricValue(t, text, `pland_routed_total{direction="fallback"}`); got != 1 {
		t.Fatalf("fallback count %g, want 1", got)
	}
	if got := metricValue(t, text, "pland_builds_total"); got != 1 {
		t.Fatalf("local builds %g, want 1", got)
	}
}

// TestFleetDrainDuringHedge extends the drain contract to the fleet: a
// request proxied to a slow owner hedges to the next peer; draining the
// owner mid-hedge must not duplicate work — the fleet completes exactly
// one build and the client sees one good answer.
func TestFleetDrainDuringHedge(t *testing.T) {
	nodes := newFleet(t, 2, Options{}, client.Options{
		AttemptTimeout: 10 * time.Second,
		HedgeAfter:     30 * time.Millisecond,
	})
	// The owner p0 parks every admitted request until released.
	nodes[0].srv.holdBuild = make(chan struct{})
	body := seedOwnedBy(t, nodes, "p0")

	done := make(chan error, 1)
	go func() {
		resp, err := http.Post(nodes[1].ts.URL+"/plan", "application/json", bytes.NewReader(body))
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
			}
		}
		done <- err
	}()

	// Wait until the hedge launched, then drain the stuck owner while
	// the hedged request is still outstanding, and finally release it.
	c := nodes[1].srv.opt.Router.Client
	deadline := time.Now().Add(5 * time.Second)
	for c.Snap().Hedges == 0 {
		if time.Now().After(deadline) {
			t.Fatal("hedge never launched")
		}
		time.Sleep(time.Millisecond)
	}
	nodes[0].srv.Drain()
	if err := <-done; err != nil {
		t.Fatalf("hedged request failed: %v", err)
	}
	close(nodes[0].srv.holdBuild)

	// The owner's parked request dies with its canceled context; only
	// the hedge's local build ran anywhere in the fleet.
	deadline = time.Now().Add(5 * time.Second)
	for {
		total := metricValue(t, scrape(t, nodes[0].ts), "pland_builds_total") +
			metricValue(t, scrape(t, nodes[1].ts), "pland_builds_total")
		if total == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet-wide builds = %g, want exactly 1", total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if snap := c.Snap(); snap.HedgeWins != 1 {
		t.Fatalf("hedge wins = %d, want 1", snap.HedgeWins)
	}
}
