package server

import (
	"fmt"
	"net/http"
	"strings"

	"repro/internal/pipeline"
)

// metric is one exported sample with its HELP/TYPE preamble.
type metric struct {
	name string
	kind string // "counter" or "gauge"
	help string
	rows []row
}

// row is one sample line: optional label pair plus the value.
type row struct {
	label string // rendered inside {...} verbatim; empty for none
	value float64
}

// handleMetrics renders the pipeline recorder aggregates and the
// admission gauges in the Prometheus text exposition format. The format
// is simple enough that hand-rendering it keeps the module free of a
// client library dependency.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sum := s.rec.Summary()
	admitFrac, queueDelay, level, transitions := s.adm.snapshot()
	stageSeconds := []row{
		{`stage="estimate"`, sum.Estimate.Wall.Seconds()},
		{`stage="slice"`, sum.Slice.Wall.Seconds()},
		{`stage="dispatch"`, sum.Dispatch.Wall.Seconds()},
		{`stage="verify"`, sum.Verify.Wall.Seconds()},
	}
	ms := []metric{
		{"pland_builds_total", "counter", "Cold pipeline builds executed.",
			[]row{{"", float64(sum.Builds)}}},
		{"pland_cache_hits_total", "counter", "Plans served from the shared cache.",
			[]row{{"", float64(sum.Hits)}}},
		{"pland_coalesced_builds_total", "counter", "Builds that joined another request's in-flight build of the same key.",
			[]row{{"", float64(sum.Coalesced)}}},
		{"pland_canceled_builds_total", "counter", "Builds abandoned at a stage boundary by a done context.",
			[]row{{"", float64(sum.Canceled)}}},
		{"pland_build_errors_total", "counter", "Pipeline stage errors.",
			[]row{{"", float64(sum.Errors)}}},
		{"pland_stage_seconds_total", "counter", "Cumulative wall-clock time per pipeline stage.",
			stageSeconds},
		{"pland_requests_total", "counter", "Plan requests by outcome.",
			[]row{
				{`outcome="served"`, float64(s.served.Load())},
				{`outcome="rejected"`, float64(s.rejected.Load())},
				{`outcome="throttled"`, float64(s.throttled.Load())},
				{`outcome="expired"`, float64(s.expired.Load())},
				{`outcome="refused"`, float64(s.refused.Load())},
			}},
		{"pland_in_flight", "gauge", "Requests currently planning.",
			[]row{{"", float64(s.inFlight.Load())}}},
		{"pland_queue_depth", "gauge", "Requests waiting for a planning slot.",
			[]row{{"", float64(s.queued.Load())}}},
		{"pland_cached_plans", "gauge", "Plans resident in the shared cache.",
			[]row{{"", float64(s.cache.Len())}}},
		{"pland_draining", "gauge", "1 while the server refuses new work.",
			[]row{{"", boolGauge(s.draining.Load())}}},
		{"pland_shedding", "gauge", "1 while the overload ladder sheds Optional requests.",
			[]row{{"", boolGauge(s.shedding.Load())}}},
		{"pland_shed_engaged_total", "counter", "Times the shed ladder engaged (mode entries).",
			[]row{{"", float64(s.shedEngaged.Load())}}},
		{"pland_shed_total", "counter", "Requests shed with 429, by criticality.",
			[]row{
				{`criticality="optional"`, float64(s.shedOptional.Load())},
				{`criticality="mandatory"`, float64(s.shedMandatory.Load())},
			}},
		{"pland_admission_admit_fraction", "gauge", "Fraction of offered load the AIMD controller currently admits.",
			[]row{{"", admitFrac}}},
		{"pland_queue_delay_seconds", "gauge", "Worst queue sojourn of the last closed admission window.",
			[]row{{"", queueDelay.Seconds()}}},
		{"pland_admission_shed_total", "counter", "Requests shed by the AIMD admit coin.",
			[]row{{"", float64(s.admitShed.Load())}}},
		{"pland_verify_total", "counter", "Plans served with verification, by mode and verdict.",
			s.verifyRows()},
		{"pland_brownout_level", "gauge", "Brownout ladder rung (0 full, 1 cheap builds, 2 cache-only).",
			[]row{{"", float64(level)}}},
		{"pland_brownout_transitions_total", "counter", "Brownout ladder moves in either direction.",
			[]row{{"", float64(transitions)}}},
		{"pland_plans_total", "counter", "Plans served by quality.",
			[]row{
				{`quality="full"`, float64(s.plansFull.Load())},
				{`quality="degraded"`, float64(s.plansDegraded.Load())},
			}},
		{"pland_rebuilds_total", "counter", "Incremental replans by outcome.",
			[]row{
				{`outcome="hit"`, float64(sum.RebuildHits)},
				{`outcome="incremental"`, float64(sum.Rebuilds - sum.RebuildHits - sum.RebuildFallbacks)},
				{`outcome="full"`, float64(sum.RebuildFallbacks)},
			}},
		{"pland_brownout_seeded_total", "counter", "Brownout builds replanned off a resident full-quality plan's estimates.",
			[]row{{"", float64(s.cheapSeeded.Load())}}},
		{"pland_cache_only_total", "counter", "Cache-only rung outcomes (hit: served from cache, miss: 503).",
			[]row{
				{`outcome="hit"`, float64(s.cacheOnlyHits.Load())},
				{`outcome="miss"`, float64(s.cacheOnlyMiss.Load())},
			}},
		{"pland_batch_requests_total", "counter", "POST /plan/batch requests.",
			[]row{{"", float64(s.batchRequests.Load())}}},
		{"pland_batch_items_total", "counter", "Workload items across all batch requests.",
			[]row{{"", float64(s.batchItems.Load())}}},
		{"pland_batch_routed_groups_total", "counter", "Batch item groups shipped to their owning peers.",
			[]row{{"", float64(s.batchRoutedOut.Load())}}},
		{"pland_routed_total", "counter", "Fleet routing outcomes.",
			[]row{
				{`direction="out"`, float64(s.routedOut.Load())},
				{`direction="in"`, float64(s.routedIn.Load())},
				{`direction="fallback"`, float64(s.routedFallback.Load())},
			}},
		{"pland_warmfill_rounds_total", "counter", "Completed warm-fill rounds (digest pull + hint drain).",
			[]row{{"", float64(s.warmRounds.Load())}}},
		{"pland_warmfill_pulled_total", "counter", "Plans installed from peer digests (owner/standby replication).",
			[]row{{"", float64(s.warmPulled.Load())}}},
		{"pland_warmfill_readthrough_total", "counter", "Read-through sweeps run before a non-owner local build.",
			[]row{{"", float64(s.warmReads.Load())}}},
		{"pland_warmfill_pushed_total", "counter", "Hinted plans delivered back to their owners.",
			[]row{{"", float64(s.warmPushed.Load())}}},
		{"pland_warmfill_hints_total", "counter", "Handoff hints recorded for unreachable owners.",
			[]row{{"", float64(s.warmHinted.Load())}}},
		{"pland_warmfill_errors_total", "counter", "Warm-fill round-trips that failed (digest, fill, push).",
			[]row{{"", float64(s.warmErrors.Load())}}},
		{"pland_warmfill_pending_hints", "gauge", "Handoff hints awaiting a reachable owner.",
			[]row{{"", float64(s.hints.pending())}}},
		{"pland_warmfill_fill_total", "counter", "Cache fill endpoint traffic by outcome.",
			[]row{
				{`outcome="served"`, float64(s.fillServed.Load())},
				{`outcome="miss"`, float64(s.fillMisses.Load())},
				{`outcome="accepted"`, float64(s.fillAccepted.Load())},
			}},
		{"pland_snapshot_saves_total", "counter", "Successful cache snapshot saves.",
			[]row{{"", float64(s.snapSaves.Load())}}},
		{"pland_snapshot_loads_total", "counter", "Successful cache snapshot loads.",
			[]row{{"", float64(s.snapLoads.Load())}}},
		{"pland_snapshot_saved_plans", "gauge", "Plans in the most recent saved snapshot.",
			[]row{{"", float64(s.snapSavedPlans.Load())}}},
		{"pland_snapshot_loaded_plans_total", "counter", "Plans restored into the cache from snapshots.",
			[]row{{"", float64(s.snapLoadedPlans.Load())}}},
		{"pland_snapshot_errors_total", "counter", "Snapshot saves/loads that failed.",
			[]row{{"", float64(s.snapErrors.Load())}}},
	}
	var sb strings.Builder
	for _, m := range ms {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s %s\n", m.name, m.help, m.name, m.kind)
		for _, r := range m.rows {
			if r.label != "" {
				fmt.Fprintf(&sb, "%s{%s} %s\n", m.name, r.label, formatValue(r.value))
			} else {
				fmt.Fprintf(&sb, "%s %s\n", m.name, formatValue(r.value))
			}
		}
	}
	if rt := s.opt.Router; rt != nil && rt.Client != nil {
		rt.Client.WriteMetrics(&sb, "pland")
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = fmt.Fprint(w, sb.String())
}

// verifyRows renders the pland_verify_total matrix: one sample per
// verification mode and verifier verdict that has actually occurred
// (an all-zero matrix renders a single unlabeled zero so the metric
// family stays visible).
func (s *Server) verifyRows() []row {
	var rows []row
	for m := verifyFeas; int(m) < numVerifyModes; m++ {
		for o := 0; o < numVerifyOutcomes; o++ {
			if v := s.verifyTotals[m][o].Load(); v > 0 {
				rows = append(rows, row{
					fmt.Sprintf("mode=%q,outcome=%q", m, pipeline.VerifyOutcome(o)),
					float64(v),
				})
			}
		}
	}
	if len(rows) == 0 {
		rows = []row{{"", 0}}
	}
	return rows
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// formatValue renders counters as integers and seconds with full float
// precision, matching what Prometheus scrapers expect.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
