package server

import (
	"math"
	"math/rand"
	"sync"
	"time"
)

// Adaptive admission and the brownout ladder.
//
// The static MaxQueue bound sheds work only after the queue is already
// deep — a cliff: everything is admitted at full cost right up to the
// wall, then everything beyond it is refused. The controller here
// watches the signal that actually hurts clients, queue *delay* (the
// sojourn time a request spends waiting for a planning slot), and acts
// on it CoDel-style: a target sojourn, measured over short windows,
// with the worst observation per window driving two coupled responses:
//
//   - an AIMD admit fraction: while the worst sojourn of a window
//     exceeds the target the fraction of offered work admitted shrinks
//     multiplicatively; while it stays under, the fraction recovers
//     additively. Measuring a *fraction* of offered load (rather than
//     an absolute rate) keeps the controller calibration-free across
//     hardware and workload sizes. Criticality stays the first rung:
//     an over-target window also engages Optional-only shedding
//     (hysteretically, released at half target), so the optional tier
//     absorbs the first cut before any mandatory request is refused.
//   - a brownout ladder for the work that is admitted: as the worst
//     sojourn crosses configurable rungs, cold builds step down to
//     progressively cheaper pipeline configurations — full plan →
//     cheap NORM-metric plan (tagged degraded) → cache/read-through
//     only with 503 on miss. Cached plans always serve at the quality
//     they were built at; the ladder only governs what new work costs.
//     Demotion is immediate at a window close; promotion needs
//     promoteAfter consecutive windows below the rung's release
//     threshold (half the rung), the same clean-streak hysteresis the
//     degrade mode controller uses, so a load hovering at a rung does
//     not flap the ladder.
//
// Everything is lazy — windows close on whatever request observes the
// clock past the boundary — so the controller needs no goroutine and
// costs one mutex on the request path.

// brownoutLevel is a rung of the brownout ladder.
type brownoutLevel int

const (
	// brownoutOff: cold builds run the client's full configuration.
	brownoutOff brownoutLevel = iota
	// brownoutCheap: cold builds are replaced by the cheap NORM-metric
	// configuration and tagged degraded; resident full-quality plans
	// still serve as such.
	brownoutCheap
	// brownoutCacheOnly: no cold builds at all — cache (and, in fleet
	// mode, peer read-through) or 503.
	brownoutCacheOnly
)

// String implements fmt.Stringer.
func (l brownoutLevel) String() string {
	switch l {
	case brownoutOff:
		return "off"
	case brownoutCheap:
		return "cheap"
	case brownoutCacheOnly:
		return "cache-only"
	}
	return "?"
}

// admitOptions are the controller tunables; zero fields take the
// documented defaults (withDefaults).
type admitOptions struct {
	// Target is the queue-delay (sojourn) target; windows whose worst
	// sojourn exceeds it count as overloaded. 0 means 25ms; negative
	// disables the controller entirely (admitController becomes a
	// pass-through).
	Target time.Duration
	// Window is the control window length. 0 means 250ms.
	Window time.Duration
	// CheapAt and CacheOnlyAt are the brownout rungs: worst window
	// sojourn at or above them demotes cold builds to the cheap
	// configuration / to cache-only serving. 0 means 2× and 8× Target;
	// negative disables the rung.
	CheapAt     time.Duration
	CacheOnlyAt time.Duration
	// PromoteAfter is how many consecutive windows below a rung's
	// release threshold (half the rung) re-promote one level. 0 means 3.
	PromoteAfter int
	// Decrease is the multiplicative admit-fraction cut per overloaded
	// window; 0 means 0.7. Increase is the additive recovery per clean
	// window; 0 means 0.05. MinFrac floors the fraction so the
	// controller always lets a trickle through to keep measuring; 0
	// means 0.05.
	Decrease, Increase, MinFrac float64
	// Seed seeds the admit coin. 0 means 1.
	Seed int64
}

func (o admitOptions) withDefaults() admitOptions {
	if o.Target == 0 {
		o.Target = 25 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 250 * time.Millisecond
	}
	if o.CheapAt == 0 {
		o.CheapAt = 2 * o.Target
	}
	if o.CacheOnlyAt == 0 {
		o.CacheOnlyAt = 8 * o.Target
	}
	if o.PromoteAfter <= 0 {
		o.PromoteAfter = 3
	}
	if o.Decrease <= 0 || o.Decrease >= 1 {
		o.Decrease = 0.7
	}
	if o.Increase <= 0 {
		o.Increase = 0.05
	}
	if o.MinFrac <= 0 {
		o.MinFrac = 0.05
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// admitController is the queue-delay admission controller plus the
// brownout ladder state. Safe for concurrent use.
type admitController struct {
	opt admitOptions
	now func() time.Time

	mu sync.Mutex
	// frac is the current admitted fraction of offered load, in
	// [MinFrac, 1].
	frac float64
	// worst is the worst sojourn observed in the current window;
	// lastWorst is the previous window's, exported as the delay gauge.
	worst, lastWorst time.Duration
	windowEnd        time.Time
	// level is the current brownout rung; clean counts consecutive
	// closed windows that argued for a promotion.
	level brownoutLevel
	clean int
	// shedOptional is the hysteretic first rung: engage on an
	// over-target window, release on a window at or below half target.
	shedOptional bool
	rnd          *rand.Rand

	// transitions counts ladder moves (both directions), for the
	// flappiness metric.
	transitions int64
}

// newAdmitController builds a controller on the real clock.
func newAdmitController(opt admitOptions) *admitController {
	opt = opt.withDefaults()
	return &admitController{
		opt:  opt,
		now:  time.Now,
		frac: 1,
		rnd:  rand.New(rand.NewSource(opt.Seed)),
	}
}

// disabled reports whether the controller is a pass-through.
func (a *admitController) disabled() bool { return a.opt.Target < 0 }

// observe feeds one queue-sojourn measurement: the time a request
// spent waiting for a planning slot, whether or not it got one (a
// request that gave up after 80ms in queue is exactly as loud a signal
// as one that got a slot after 80ms).
func (a *admitController) observe(sojourn time.Duration) {
	if a.disabled() {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(a.now())
	if sojourn > a.worst {
		a.worst = sojourn
	}
}

// admit flips the AIMD coin for one offered request: true admits it
// into the (still MaxQueue-bounded) queue, false sheds it with 429.
func (a *admitController) admit() bool {
	if a.disabled() {
		return true
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(a.now())
	if a.frac >= 1 {
		return true
	}
	return a.rnd.Float64() < a.frac
}

// sheddingOptional reports whether the criticality first rung is
// engaged.
func (a *admitController) sheddingOptional() bool {
	if a.disabled() {
		return false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(a.now())
	return a.shedOptional
}

// currentLevel returns the brownout rung governing cold builds.
func (a *admitController) currentLevel() brownoutLevel {
	if a.disabled() {
		return brownoutOff
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(a.now())
	return a.level
}

// snapshot returns (admit fraction, last closed window's worst sojourn,
// level, ladder transitions) for /metrics.
func (a *admitController) snapshot() (frac float64, delay time.Duration, level brownoutLevel, transitions int64) {
	if a.disabled() {
		return 1, 0, brownoutOff, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.roll(a.now())
	return a.frac, a.lastWorst, a.level, a.transitions
}

// roll closes every window boundary the clock has passed. Called with
// the mutex held. Closing applies the AIMD step, advances the
// criticality rung's hysteresis, and moves the brownout ladder; an
// idle stretch (no requests for many windows) closes them all with a
// zero worst, so pressure state decays to calm exactly as if clean
// traffic had flowed.
func (a *admitController) roll(now time.Time) {
	if a.windowEnd.IsZero() {
		a.windowEnd = now.Add(a.opt.Window)
		return
	}
	for !now.Before(a.windowEnd) {
		a.closeWindow()
		a.windowEnd = a.windowEnd.Add(a.opt.Window)
		// After a long idle gap, don't replay thousands of empty
		// windows one by one.
		if gap := now.Sub(a.windowEnd); gap > 0 {
			if skip := gap / a.opt.Window; skip > time.Duration(2*a.opt.PromoteAfter) {
				for i := 0; i < 2*a.opt.PromoteAfter; i++ {
					a.closeWindow()
				}
				a.windowEnd = now.Add(a.opt.Window)
				return
			}
		}
	}
}

// closeWindow applies the control laws to the window that just ended.
func (a *admitController) closeWindow() {
	w := a.worst
	a.worst = 0
	a.lastWorst = w

	// AIMD on the admit fraction.
	if w > a.opt.Target {
		a.frac = math.Max(a.opt.MinFrac, a.frac*a.opt.Decrease)
	} else {
		a.frac = math.Min(1, a.frac+a.opt.Increase)
	}

	// Criticality first rung, with a half-target hysteresis band.
	if w > a.opt.Target {
		a.shedOptional = true
	} else if w <= a.opt.Target/2 {
		a.shedOptional = false
	}

	// Brownout ladder: demote immediately, promote on a clean streak.
	want := brownoutOff
	switch {
	case a.opt.CacheOnlyAt > 0 && w >= a.opt.CacheOnlyAt:
		want = brownoutCacheOnly
	case a.opt.CheapAt > 0 && w >= a.opt.CheapAt:
		want = brownoutCheap
	}
	switch {
	case want > a.level:
		a.level = want
		a.clean = 0
		a.transitions++
	case a.level > brownoutOff && a.releasesLevel(w):
		a.clean++
		if a.clean >= a.opt.PromoteAfter {
			a.level--
			a.clean = 0
			a.transitions++
		}
	default:
		a.clean = 0
	}
}

// releasesLevel reports whether the closed window's worst sojourn is
// below the current rung's release threshold (half the rung's engage
// threshold), i.e. argues for a promotion.
func (a *admitController) releasesLevel(w time.Duration) bool {
	switch a.level {
	case brownoutCacheOnly:
		return a.opt.CacheOnlyAt > 0 && w < a.opt.CacheOnlyAt/2
	case brownoutCheap:
		return a.opt.CheapAt > 0 && w < a.opt.CheapAt/2
	}
	return false
}
