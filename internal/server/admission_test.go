package server

import (
	"testing"
	"time"
)

// testAdmit builds a controller on a manually-advanced clock.
func testAdmit(opt admitOptions) (*admitController, *time.Time) {
	a := newAdmitController(opt)
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }
	return a, &clock
}

// closeWith advances the clock one full window after feeding one
// observation, so the window closes with that observation as its worst.
func closeWith(a *admitController, clock *time.Time, worst time.Duration) {
	a.observe(worst)
	*clock = clock.Add(a.opt.Window)
	// Any accessor rolls the window.
	a.currentLevel()
}

func TestAdmitFractionAIMD(t *testing.T) {
	a, clock := testAdmit(admitOptions{Target: 10 * time.Millisecond})
	if f, _, _, _ := a.snapshot(); f != 1 {
		t.Fatalf("initial frac = %v, want 1", f)
	}

	// Three overloaded windows: multiplicative decrease compounds.
	for i := 0; i < 3; i++ {
		closeWith(a, clock, 50*time.Millisecond)
	}
	f, delay, _, _ := a.snapshot()
	want := 0.7 * 0.7 * 0.7
	if f < want-1e-9 || f > want+1e-9 {
		t.Fatalf("frac after 3 bad windows = %v, want %v", f, want)
	}
	if delay != 50*time.Millisecond {
		t.Fatalf("delay gauge = %v, want 50ms", delay)
	}

	// Clean windows recover additively back to 1, no overshoot.
	for i := 0; i < 100; i++ {
		closeWith(a, clock, 0)
	}
	if f, _, _, _ := a.snapshot(); f != 1 {
		t.Fatalf("frac after recovery = %v, want 1", f)
	}
}

func TestAdmitFractionFloor(t *testing.T) {
	a, clock := testAdmit(admitOptions{Target: 10 * time.Millisecond})
	for i := 0; i < 100; i++ {
		closeWith(a, clock, time.Second)
	}
	if f, _, _, _ := a.snapshot(); f != a.opt.MinFrac {
		t.Fatalf("frac = %v, want floor %v", f, a.opt.MinFrac)
	}
	// Even at the floor a trickle passes: over many coins, some admit.
	admitted := 0
	for i := 0; i < 1000; i++ {
		if a.admit() {
			admitted++
		}
	}
	if admitted == 0 || admitted == 1000 {
		t.Fatalf("admitted %d/1000 at floor frac %v, want a nonzero minority", admitted, a.opt.MinFrac)
	}
}

func TestAdmitProbabilistic(t *testing.T) {
	a, clock := testAdmit(admitOptions{Target: 10 * time.Millisecond})
	// One bad window: frac = 0.7. Roughly 70% of coins admit.
	closeWith(a, clock, 50*time.Millisecond)
	admitted := 0
	for i := 0; i < 2000; i++ {
		if a.admit() {
			admitted++
		}
	}
	if admitted < 1200 || admitted > 1600 {
		t.Fatalf("admitted %d/2000 at frac 0.7, want ~1400", admitted)
	}
}

func TestOptionalSheddingHysteresis(t *testing.T) {
	a, clock := testAdmit(admitOptions{Target: 10 * time.Millisecond})
	if a.sheddingOptional() {
		t.Fatal("shedding engaged at rest")
	}
	closeWith(a, clock, 20*time.Millisecond)
	if !a.sheddingOptional() {
		t.Fatal("over-target window did not engage optional shedding")
	}
	// In the hysteresis band (target/2, target]: stays engaged.
	closeWith(a, clock, 8*time.Millisecond)
	if !a.sheddingOptional() {
		t.Fatal("shedding released inside hysteresis band")
	}
	// At or below half target: releases.
	closeWith(a, clock, 5*time.Millisecond)
	if a.sheddingOptional() {
		t.Fatal("shedding not released below half target")
	}
}

func TestBrownoutLadder(t *testing.T) {
	a, clock := testAdmit(admitOptions{Target: 10 * time.Millisecond})
	// Defaults: cheap at 20ms, cache-only at 80ms, promote after 3.
	if a.currentLevel() != brownoutOff {
		t.Fatal("ladder engaged at rest")
	}

	// Demotion is immediate, and can jump straight to cache-only.
	closeWith(a, clock, 100*time.Millisecond)
	if l := a.currentLevel(); l != brownoutCacheOnly {
		t.Fatalf("level after 100ms window = %v, want cache-only", l)
	}

	// Two clean windows are not enough to promote.
	closeWith(a, clock, 0)
	closeWith(a, clock, 0)
	if l := a.currentLevel(); l != brownoutCacheOnly {
		t.Fatalf("level after 2 clean windows = %v, want cache-only still", l)
	}
	// Third clean window promotes one rung only.
	closeWith(a, clock, 0)
	if l := a.currentLevel(); l != brownoutCheap {
		t.Fatalf("level after 3 clean windows = %v, want cheap", l)
	}
	// A dirty window resets the clean streak.
	closeWith(a, clock, 0)
	closeWith(a, clock, 15*time.Millisecond) // above cheap release (10ms), below cheap engage (20ms)
	closeWith(a, clock, 0)
	closeWith(a, clock, 0)
	if l := a.currentLevel(); l != brownoutCheap {
		t.Fatalf("level = %v, want cheap (streak was reset)", l)
	}
	closeWith(a, clock, 0)
	if l := a.currentLevel(); l != brownoutOff {
		t.Fatalf("level = %v, want off after full clean streak", l)
	}

	_, _, _, transitions := a.snapshot()
	if transitions != 3 { // off→cache-only, →cheap, →off
		t.Fatalf("transitions = %d, want 3", transitions)
	}
}

func TestBrownoutHoveringDoesNotFlap(t *testing.T) {
	a, clock := testAdmit(admitOptions{Target: 10 * time.Millisecond})
	// Hover right around the cheap rung (20ms): alternate 25ms / 15ms.
	closeWith(a, clock, 25*time.Millisecond)
	for i := 0; i < 20; i++ {
		closeWith(a, clock, 15*time.Millisecond)
		closeWith(a, clock, 25*time.Millisecond)
	}
	if l := a.currentLevel(); l != brownoutCheap {
		t.Fatalf("level = %v, want cheap throughout hover", l)
	}
	_, _, _, transitions := a.snapshot()
	if transitions != 1 {
		t.Fatalf("transitions while hovering = %d, want 1", transitions)
	}
}

func TestAdmitIdleDecaysToCalm(t *testing.T) {
	a, clock := testAdmit(admitOptions{Target: 10 * time.Millisecond})
	for i := 0; i < 10; i++ {
		closeWith(a, clock, time.Second)
	}
	if a.currentLevel() != brownoutCacheOnly || !a.sheddingOptional() {
		t.Fatal("not fully browned out before idle gap")
	}
	// A long idle gap (hours) closes enough empty windows to fully
	// recover without replaying them one by one.
	*clock = clock.Add(2 * time.Hour)
	if l := a.currentLevel(); l != brownoutOff {
		t.Fatalf("level after idle gap = %v, want off", l)
	}
	if a.sheddingOptional() {
		t.Fatal("optional shedding survived idle gap")
	}
	if f, _, _, _ := a.snapshot(); f >= 1 {
		// frac recovers additively; after 2*PromoteAfter skipped windows
		// it may not be back to 1 — but it must be rising, and another
		// idle gap finishes the job.
		*clock = clock.Add(2 * time.Hour)
	}
}

func TestAdmitDisabled(t *testing.T) {
	a, clock := testAdmit(admitOptions{Target: -1})
	for i := 0; i < 10; i++ {
		closeWith(a, clock, time.Hour)
	}
	if !a.admit() || a.sheddingOptional() || a.currentLevel() != brownoutOff {
		t.Fatal("disabled controller acted on observations")
	}
	if f, d, l, tr := a.snapshot(); f != 1 || d != 0 || l != brownoutOff || tr != 0 {
		t.Fatalf("disabled snapshot = %v %v %v %v, want 1 0 off 0", f, d, l, tr)
	}
}

func TestAdmitObserveOnFailedWait(t *testing.T) {
	// The signal must count even when the request never got a slot:
	// observe() is outcome-agnostic by construction; pin that a single
	// observation over target flips the next window.
	a, clock := testAdmit(admitOptions{Target: 10 * time.Millisecond})
	a.observe(500 * time.Millisecond) // e.g. context died while queued
	*clock = clock.Add(a.opt.Window)
	if !a.sheddingOptional() {
		t.Fatal("failed-wait observation did not register")
	}
}
