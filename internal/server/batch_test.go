package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cluster/client"
)

func mustUnmarshal(t *testing.T, raw []byte, v any) {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("decode: %v in %s", err, raw)
	}
}

// postBatch ships a BatchRequest and decodes the answer.
func postBatch(t *testing.T, url, query string, req BatchRequest) (*http.Response, BatchResponse, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	u := url + "/plan/batch"
	if query != "" {
		u += "?" + query
	}
	resp, err := http.Post(u, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var br BatchResponse
	if resp.StatusCode == http.StatusOK {
		mustUnmarshal(t, raw, &br)
	}
	return resp, br, raw
}

// TestBatchEndpoint: a mixed batch comes back with per-item outcomes —
// good items planned, a malformed one failed alone — in request order.
func TestBatchEndpoint(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := BatchRequest{Items: []BatchItem{
		{Workload: workloadBody(t, 71)},
		{Workload: []byte(`{"not":"a workload"}`)},
		{Criticality: "optional", Workload: workloadBody(t, 72)},
	}}
	resp, br, raw := postBatch(t, ts.URL, "metric=ADAPT-L", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	if len(br.Items) != 3 {
		t.Fatalf("%d items, want 3", len(br.Items))
	}
	if it := br.Items[0]; it.Status != BatchPlanned || it.Code != 200 || it.Response == nil || it.Response.Quality != "full" {
		t.Fatalf("item 0: %+v, want planned/200/full", it)
	}
	if it := br.Items[1]; it.Status != BatchFailed || it.Code != http.StatusUnprocessableEntity || it.Response != nil {
		t.Fatalf("item 1: %+v, want failed/422", it)
	}
	if it := br.Items[2]; it.Status != BatchPlanned || it.Response == nil {
		t.Fatalf("item 2: %+v, want planned", it)
	}

	text := scrape(t, ts)
	if got := metricValue(t, text, "pland_batch_requests_total"); got != 1 {
		t.Fatalf("batch requests = %g, want 1", got)
	}
	if got := metricValue(t, text, "pland_batch_items_total"); got != 3 {
		t.Fatalf("batch items = %g, want 3", got)
	}
	// The two planned items count like single requests.
	if got := metricValue(t, text, `pland_requests_total{outcome="served"}`); got != 2 {
		t.Fatalf("served = %g, want 2", got)
	}
}

func TestBatchLimits(t *testing.T) {
	srv := New(Options{MaxBatchItems: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _, raw := postBatch(t, ts.URL, "", BatchRequest{Items: make([]BatchItem, 3)})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("oversize batch: %d (%s), want 422", resp.StatusCode, raw)
	}
	resp, _, raw = postBatch(t, ts.URL, "", BatchRequest{})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("empty batch: %d (%s), want 422", resp.StatusCode, raw)
	}
}

// TestBatchSharesAdmissionBudget: with the only planning slot held and
// no queue, every batch item is shed individually — partial results
// with retry hints, not a batch-wide error — and the same batch plans
// once the slot frees.
func TestBatchSharesAdmissionBudget(t *testing.T) {
	srv := New(Options{MaxInFlight: 1, MaxQueue: -1})
	srv.holdBuild = make(chan struct{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Occupy the slot.
	go http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(workloadBody(t, 81)))
	deadline := time.Now().Add(5 * time.Second)
	for srv.inFlight.Load() == 0 && srv.slots != nil && len(srv.slots) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("slot never occupied")
		}
		time.Sleep(time.Millisecond)
	}

	req := BatchRequest{Items: []BatchItem{
		{Workload: workloadBody(t, 82)},
		{Criticality: "optional", Workload: workloadBody(t, 83)},
	}}
	resp, br, raw := postBatch(t, ts.URL, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	for i, it := range br.Items {
		if it.Status != BatchShed || it.Code != http.StatusTooManyRequests {
			t.Fatalf("item %d: %+v, want shed/429", i, it)
		}
		if it.RetryAfterSeconds < 1 {
			t.Fatalf("item %d: no retry hint", i)
		}
	}

	// A closed hold releases every later build immediately; leaving it
	// in place (not nil) avoids racing the still-running first request.
	close(srv.holdBuild)
	resp, br, raw = postBatch(t, ts.URL, "", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	for i, it := range br.Items {
		if it.Status != BatchPlanned {
			t.Fatalf("item %d after release: %+v, want planned", i, it)
		}
	}
}

// TestBatchFleetFanout: a batch posted to one node ships each remote
// owner's items as one routed sub-batch and merges the answers back in
// order.
func TestBatchFleetFanout(t *testing.T) {
	nodes := newFleet(t, 3, Options{}, client.Options{AttemptTimeout: 10 * time.Second})
	items := []BatchItem{
		{Workload: seedOwnedBy(t, nodes, "p0")},
		{Workload: seedOwnedBy(t, nodes, "p1")},
		{Workload: seedOwnedBy(t, nodes, "p2")},
	}
	resp, br, raw := postBatch(t, nodes[0].ts.URL, "metric=ADAPT-L", BatchRequest{Items: items})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	for i, it := range br.Items {
		if it.Status != BatchPlanned || it.Response == nil {
			t.Fatalf("item %d: %+v, want planned", i, it)
		}
	}
	if got := nodes[0].srv.batchRoutedOut.Load(); got != 2 {
		t.Fatalf("routed groups = %d, want 2 (p1, p2)", got)
	}
	// Each remote owner planned its own item via a routed sub-batch.
	for _, i := range []int{1, 2} {
		if got := nodes[i].srv.batchItems.Load(); got != 1 {
			t.Fatalf("p%d batch items = %d, want 1", i, got)
		}
		if got := nodes[i].srv.routedIn.Load(); got != 1 {
			t.Fatalf("p%d routed in = %d, want 1", i, got)
		}
	}
}

// TestBatchFleetFallback: a dead owner does not fail its items — the
// group lands on a ring fallback or is planned locally.
func TestBatchFleetFallback(t *testing.T) {
	nodes := newFleet(t, 3, Options{}, client.Options{
		AttemptTimeout: 2 * time.Second,
		MaxAttempts:    2,
		BaseBackoff:    10 * time.Millisecond,
	})
	body := seedOwnedBy(t, nodes, "p1")
	nodes[1].ts.Close()

	resp, br, raw := postBatch(t, nodes[0].ts.URL, "", BatchRequest{Items: []BatchItem{{Workload: body}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	if it := br.Items[0]; it.Status != BatchPlanned || it.Response == nil {
		t.Fatalf("item: %+v, want planned despite dead owner", it)
	}
}
