package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/pipeline"
)

// Warm fill: the serving-layer half of the fleet's cache recovery
// protocol. Three mechanisms share the plan wire format from
// internal/pipeline:
//
//   - digest/fill endpoints: GET /cache/digest enumerates this peer's
//     resident plan keys as URL-safe tokens; GET /cache/fill?key=<tok>
//     serves one serialized plan; POST /cache/fill accepts one (the
//     integrity check in DecodePlan gates what is installed).
//   - replication pull: every warm-fill round this peer reads each
//     alive peer's digest and pulls the plans it is owner or first
//     standby for (ring rank 0 or 1). Rank-1 standby copies are what
//     make a blackout cheap — the fallback peer is warm before the
//     owner disappears, so re-routed requests hit instead of
//     rebuilding. A peer restarting with an empty cache refills its
//     owned keys the same way.
//   - hinted handoff: a peer that plans a key whose static ring owner
//     is elsewhere (because the owner was unreachable) records a hint
//     and pushes the plan back when the owner is reachable again —
//     either on the prober's rise verdict (NoteRisen) or on the next
//     warm-fill round for owners that never probed down (a chaos
//     blackout drops /plan traffic but leaves /healthz exempt).
//
// Consistency is trivial because plans are immutable and keyed by
// content fingerprint: a fill can be stale only by absence, never by
// value, so installing always converges and no vector clocks apply.

// digestResponse is the JSON body of GET /cache/digest.
type digestResponse struct {
	// Peer is the answering peer's name ("" outside fleet mode).
	Peer string `json:"peer"`
	// Keys are the resident plan keys as EncodeKeyParam tokens, oldest
	// first (the cache's eviction order).
	Keys []string `json:"keys"`
}

// hintStore records, per unreachable owner, the plan keys this peer
// served on the owner's behalf. Bounded per owner; overflow drops the
// oldest hints first — the periodic digest pull is the backstop that
// catches anything handoff forgets.
type hintStore struct {
	mu sync.Mutex
	m  map[string][]pipeline.Key
	in map[string]map[pipeline.Key]bool
}

// maxHintsPerPeer bounds the handoff backlog kept for one owner.
const maxHintsPerPeer = 4096

func (h *hintStore) add(owner string, k pipeline.Key) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.m == nil {
		h.m = make(map[string][]pipeline.Key)
		h.in = make(map[string]map[pipeline.Key]bool)
	}
	if h.in[owner][k] {
		return false
	}
	if h.in[owner] == nil {
		h.in[owner] = make(map[pipeline.Key]bool)
	}
	if len(h.m[owner]) >= maxHintsPerPeer {
		drop := h.m[owner][0]
		h.m[owner] = h.m[owner][1:]
		delete(h.in[owner], drop)
	}
	h.m[owner] = append(h.m[owner], k)
	h.in[owner][k] = true
	return true
}

// take removes and returns every hint recorded for owner. The caller
// re-adds what it fails to deliver.
func (h *hintStore) take(owner string) []pipeline.Key {
	h.mu.Lock()
	defer h.mu.Unlock()
	ks := h.m[owner]
	delete(h.m, owner)
	delete(h.in, owner)
	return ks
}

// owners returns the peers with pending hints.
func (h *hintStore) owners() []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]string, 0, len(h.m))
	for o := range h.m {
		out = append(out, o)
	}
	return out
}

// pending returns the total hint count, for the metrics gauge.
func (h *hintStore) pending() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for _, ks := range h.m {
		n += len(ks)
	}
	return n
}

// handleCacheDigest answers GET /cache/digest.
func (s *Server) handleCacheDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.fail(w, http.StatusMethodNotAllowed, "GET /cache/digest")
		return
	}
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	resp := digestResponse{}
	if rt := s.opt.Router; rt != nil {
		resp.Peer = rt.Self
	}
	keys := s.cache.Keys()
	resp.Keys = make([]string, len(keys))
	for i, k := range keys {
		resp.Keys[i] = pipeline.EncodeKeyParam(k)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCacheFill answers GET (serve one plan) and POST (accept one
// plan) on /cache/fill.
func (s *Server) handleCacheFill(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	switch r.Method {
	case http.MethodGet:
		k, err := pipeline.DecodeKeyParam(r.URL.Query().Get("key"))
		if err != nil {
			s.fail(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		plan, ok := s.cache.Lookup(k)
		if !ok {
			s.fillMisses.Add(1)
			s.fail(w, http.StatusNotFound, "plan not resident")
			return
		}
		s.fillServed.Add(1)
		writeJSON(w, http.StatusOK, pipeline.EncodePlan(plan))
	case http.MethodPost:
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
		if err != nil {
			s.fail(w, http.StatusUnprocessableEntity, "reading plan: %v", err)
			return
		}
		var pj pipeline.PlanJSON
		if err := json.Unmarshal(raw, &pj); err != nil {
			s.fail(w, http.StatusUnprocessableEntity, "parsing plan: %v", err)
			return
		}
		plan, err := pipeline.DecodePlan(pj)
		if err != nil {
			// Failed integrity: refuse loudly, never install.
			s.fail(w, http.StatusUnprocessableEntity, "%v", err)
			return
		}
		s.cache.Install(plan)
		s.fillAccepted.Add(1)
		w.WriteHeader(http.StatusNoContent)
	default:
		w.Header().Set("Allow", "GET, POST")
		s.fail(w, http.StatusMethodNotAllowed, "GET or POST /cache/fill")
	}
}

// replicaRank returns this peer's position in the key's static ring
// order, or -1 when outside fleet mode.
func (s *Server) replicaRank(workload uint64) int {
	rt := s.opt.Router
	if rt == nil {
		return -1
	}
	for i, p := range rt.Ring.Order(workload) {
		if p.Name == rt.Self {
			return i
		}
	}
	return -1
}

// replicationFactor is how many ring positions hold each plan: the
// owner plus one standby. One standby is exactly what single-peer
// blackouts (the chaos drill, a rolling restart) need; a deployment
// expecting concurrent multi-peer failures would raise it.
const replicationFactor = 2

// maybeHint records a hinted handoff after this peer planned or served
// key locally: if the static owner is some other peer, that owner is
// missing the plan it should hold (it was unreachable, or it restarted
// cold), so remember to push it back.
func (s *Server) maybeHint(key pipeline.Key) {
	rt := s.opt.Router
	if rt == nil {
		return
	}
	if owner := rt.Ring.Owner(key.Workload); owner.Name != rt.Self {
		if s.hints.add(owner.Name, key) {
			s.warmHinted.Add(1)
		}
	}
}

// WarmFillOnce runs one warm-fill round: pull every alive peer's
// digest and install the plans this peer is owner or standby for, then
// push pending handoff hints to every reachable hinted owner. It
// returns the number of plans pulled in.
func (s *Server) WarmFillOnce(ctx context.Context) int {
	rt := s.opt.Router
	if rt == nil || rt.Client == nil {
		return 0
	}
	pulled := 0
	for _, peer := range rt.Ring.Peers() {
		if peer.Name == rt.Self || !peer.Alive() {
			continue
		}
		raw, err := rt.Client.FetchDigest(ctx, peer)
		if err != nil {
			s.warmErrors.Add(1)
			continue
		}
		var dig digestResponse
		if err := json.Unmarshal(raw, &dig); err != nil {
			s.warmErrors.Add(1)
			continue
		}
		for _, tok := range dig.Keys {
			k, err := pipeline.DecodeKeyParam(tok)
			if err != nil {
				s.warmErrors.Add(1)
				continue
			}
			if rank := s.replicaRank(k.Workload); rank < 0 || rank >= replicationFactor {
				continue
			}
			if s.cache.Contains(k) {
				continue
			}
			body, err := rt.Client.FetchFill(ctx, peer, tok)
			if err != nil {
				s.warmErrors.Add(1)
				continue
			}
			var pj pipeline.PlanJSON
			if err := json.Unmarshal(body, &pj); err != nil {
				s.warmErrors.Add(1)
				continue
			}
			plan, err := pipeline.DecodePlan(pj)
			if err != nil {
				s.warmErrors.Add(1)
				continue
			}
			s.cache.Install(plan)
			s.warmPulled.Add(1)
			pulled++
		}
	}
	// Handoff pushes ride the same round: a blacked-out owner never
	// probes down (/healthz is chaos-exempt), so its rise is invisible
	// to NoteRisen — the periodic drain is what catches it.
	for _, owner := range s.hints.owners() {
		if p := rt.Ring.ByName(owner); p != nil && p.Alive() {
			s.drainHints(ctx, owner)
		}
	}
	s.warmRounds.Add(1)
	return pulled
}

// readThroughCooldown bounds how often one workload fingerprint may
// trigger a read-through sweep: the first miss pays one digest
// round-trip per peer, the plans install, and every later request is a
// plain cache hit — so a second sweep inside the window would only
// re-discover an absence.
const readThroughCooldown = time.Second

// maxReadThroughEntries caps the cooldown map; overflow resets it
// wholesale (the cost of forgetting is one extra sweep per workload).
const maxReadThroughEntries = 4096

// warmReadThrough pulls every resident plan for workload fp from the
// other alive peers, so a request that failed over to this peer (its
// owner dark, or the client hedged here) is served from a replica
// instead of a cold rebuild. At most one sweep per fingerprint per
// cooldown window fires; the hot path — a resident plan — never gets
// here because the builder's cache lookup answers first. Returns the
// number of plans installed.
func (s *Server) warmReadThrough(ctx context.Context, fp uint64) int {
	rt := s.opt.Router
	if rt == nil || rt.Client == nil {
		return 0
	}
	now := time.Now()
	s.readMu.Lock()
	if last, ok := s.readLast[fp]; ok && now.Sub(last) < readThroughCooldown {
		s.readMu.Unlock()
		return 0
	}
	if s.readLast == nil || len(s.readLast) >= maxReadThroughEntries {
		s.readLast = make(map[uint64]time.Time)
	}
	s.readLast[fp] = now
	s.readMu.Unlock()

	s.warmReads.Add(1)
	pulled := 0
	for _, peer := range rt.Ring.Peers() {
		if peer.Name == rt.Self || !peer.Alive() {
			continue
		}
		raw, err := rt.Client.FetchDigest(ctx, peer)
		if err != nil {
			s.warmErrors.Add(1)
			continue
		}
		var dig digestResponse
		if err := json.Unmarshal(raw, &dig); err != nil {
			s.warmErrors.Add(1)
			continue
		}
		for _, tok := range dig.Keys {
			k, err := pipeline.DecodeKeyParam(tok)
			if err != nil || k.Workload != fp || s.cache.Contains(k) {
				continue
			}
			body, err := rt.Client.FetchFill(ctx, peer, tok)
			if err != nil {
				s.warmErrors.Add(1)
				continue
			}
			var pj pipeline.PlanJSON
			if err := json.Unmarshal(body, &pj); err != nil {
				s.warmErrors.Add(1)
				continue
			}
			plan, err := pipeline.DecodePlan(pj)
			if err != nil {
				s.warmErrors.Add(1)
				continue
			}
			s.cache.Install(plan)
			s.warmPulled.Add(1)
			pulled++
		}
	}
	return pulled
}

// drainHints pushes every hinted plan back to its risen owner. Plans
// evicted since the hint was recorded are dropped silently (the owner
// will pull anything still hot from digests); failed pushes re-enter
// the store for the next round.
func (s *Server) drainHints(ctx context.Context, owner string) {
	rt := s.opt.Router
	if rt == nil || rt.Client == nil {
		return
	}
	peer := rt.Ring.ByName(owner)
	if peer == nil {
		return
	}
	for _, k := range s.hints.take(owner) {
		plan, ok := s.cache.Lookup(k)
		if !ok {
			continue
		}
		body, err := json.Marshal(pipeline.EncodePlan(plan))
		if err != nil {
			s.warmErrors.Add(1)
			continue
		}
		if err := rt.Client.PushFill(ctx, peer, body); err != nil {
			s.warmErrors.Add(1)
			s.hints.add(owner, k)
			continue
		}
		s.warmPushed.Add(1)
	}
}

// NoteRisen reacts to the health prober marking a peer alive: pending
// handoff hints for it are pushed immediately (asynchronously — the
// prober's callback must not block on HTTP round-trips). Wire it as
// the prober's OnRise callback alongside the client's own NoteRisen.
func (s *Server) NoteRisen(peer string) {
	go s.drainHints(context.Background(), peer)
}

// RunWarmFill pulls neighbors' hot plans and drains handoff hints
// every interval until ctx is done. It blocks; callers run it in a
// goroutine. The first round runs immediately, so a restarting peer
// refills before meaningful traffic lands on it.
func (s *Server) RunWarmFill(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		s.WarmFillOnce(ctx)
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// SaveSnapshot persists the cache to path (atomically; see
// pipeline.SaveSnapshot) and returns the number of plans written.
func (s *Server) SaveSnapshot(path string) (int, error) {
	n, err := pipeline.SaveSnapshot(path, s.cache)
	if err != nil {
		s.snapErrors.Add(1)
		return n, err
	}
	s.snapSaves.Add(1)
	s.snapSavedPlans.Store(int64(n))
	return n, nil
}

// LoadSnapshot installs a snapshot into the cache (a missing file is a
// cold start) and returns the number of plans restored.
func (s *Server) LoadSnapshot(path string) (int, error) {
	n, err := pipeline.LoadSnapshot(path, s.cache)
	if err != nil {
		s.snapErrors.Add(1)
		return n, err
	}
	s.snapLoads.Add(1)
	s.snapLoadedPlans.Add(int64(n))
	return n, nil
}

// RunSnapshots saves the cache to path every interval until ctx is
// done, then saves one final time so a graceful drain persists the
// freshest hot set. It blocks; callers run it in a goroutine. Save
// errors are counted (pland_snapshot_errors_total) and retried next
// interval — a full disk must not take the serving path down.
func (s *Server) RunSnapshots(ctx context.Context, path string, interval time.Duration) {
	if interval <= 0 {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			_, _ = s.SaveSnapshot(path)
			return
		case <-t.C:
			_, _ = s.SaveSnapshot(path)
		}
	}
}
