package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/gen"
	"repro/internal/graphio"
	"repro/internal/pipeline"
	"repro/internal/slicing"
)

// workloadBody serializes a generated workload as a request body.
func workloadBody(t *testing.T, seed int64) []byte {
	t.Helper()
	cfg := gen.Default(3)
	cfg.Seed = seed
	w := gen.MustGenerate(cfg)
	var buf bytes.Buffer
	if err := graphio.WriteWorkload(&buf, w.Graph, w.Platform); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func postPlan(t *testing.T, ts *httptest.Server, query string, body []byte) (*http.Response, []byte) {
	t.Helper()
	url := ts.URL + "/plan"
	if query != "" {
		url += "?" + query
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, raw
}

// metricValue extracts one un-labelled (or exactly-labelled) sample from
// a Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
	m := re.FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("metric %s not found in:\n%s", name, text)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("metric %s: %v", name, err)
	}
	return v
}

func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	return string(raw)
}

// TestPlanEndpoint drives one workload through the full service path
// and checks the response carries a complete plan.
func TestPlanEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	body := workloadBody(t, 7)

	resp, raw := postPlan(t, ts, "metric=ADAPT-L&verify=1", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var pr PlanResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Metric != "ADAPT-L" || pr.WCET != "WCET-AVG" || pr.Dispatcher != "time-driven" {
		t.Fatalf("configuration echo wrong: %+v", pr)
	}
	if len(pr.Result.Proc) == 0 || len(pr.Result.AbsDeadline) == 0 {
		t.Fatalf("plan payload empty: %+v", pr.Result)
	}
	if len(pr.Result.Proc) != len(pr.Result.Start) || len(pr.Result.Start) != len(pr.Result.Finish) {
		t.Fatalf("ragged placements: %+v", pr.Result)
	}
}

// TestPlanVerifyModes drives one workload through every verification
// mode: each 200 must carry the verifier's verdict in the proof field,
// the analytic modes must refuse non-time-driven dispatchers, and the
// served verdicts must land in pland_verify_total{mode,outcome}.
func TestPlanVerifyModes(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	body := workloadBody(t, 9)

	allowed := map[string][]string{
		"feas":           {"rejected", "inconclusive"},
		"analytic":       {"accepted", "rejected", "inconclusive"},
		"replay":         {"accepted", "rejected"},
		"analytic-first": {"accepted", "rejected"},
	}
	for mode, verdicts := range allowed {
		resp, raw := postPlan(t, ts, "verify="+mode, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("verify=%s: status %d: %s", mode, resp.StatusCode, raw)
		}
		var pr PlanResponse
		if err := json.Unmarshal(raw, &pr); err != nil {
			t.Fatal(err)
		}
		ok := false
		for _, v := range verdicts {
			ok = ok || pr.Proof == v
		}
		if !ok {
			t.Fatalf("verify=%s: proof %q, want one of %v", mode, pr.Proof, verdicts)
		}
		if !strings.Contains(scrape(t, ts),
			fmt.Sprintf("pland_verify_total{mode=%q,outcome=%q}", mode, pr.Proof)) {
			t.Fatalf("verify=%s: verdict %q not counted in /metrics", mode, pr.Proof)
		}
	}

	// Without verification the proof field stays absent.
	resp, raw := postPlan(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unverified plan: status %d: %s", resp.StatusCode, raw)
	}
	var pr PlanResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Proof != "" {
		t.Fatalf("unverified plan carries proof %q", pr.Proof)
	}

	// The analytic proof models the time-driven dispatcher only.
	for _, q := range []string{"verify=analytic&dispatcher=planner", "verify=analytic-first&dispatcher=insertion", "verify=NOPE"} {
		if resp, raw := postPlan(t, ts, q, body); resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d, want 422 (%s)", q, resp.StatusCode, raw)
		}
	}
	// Replay needs no such gate.
	if resp, raw := postPlan(t, ts, "verify=replay&dispatcher=planner", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("verify=replay&dispatcher=planner: status %d: %s", resp.StatusCode, raw)
	}
}

// TestPlanDefaultVerify: Options.DefaultVerify applies when the request
// omits ?verify= and is overridden when it does not.
func TestPlanDefaultVerify(t *testing.T) {
	ts := httptest.NewServer(New(Options{DefaultVerify: "analytic"}).Handler())
	defer ts.Close()
	body := workloadBody(t, 9)

	resp, raw := postPlan(t, ts, "", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	var pr PlanResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Proof == "" {
		t.Fatal("default verify mode did not run")
	}
	resp, raw = postPlan(t, ts, "verify=off", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	pr = PlanResponse{}
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Proof != "" {
		t.Fatalf("verify=off did not override the default (proof %q)", pr.Proof)
	}
}

// cheapen must drop any verification mode and count it as a downgrade,
// so brownout substitutes are honestly labeled degraded.
func TestCheapenDropsVerifyMode(t *testing.T) {
	base := planConfig{metric: slicing.NORM(), disp: pipeline.TimeDriven()}
	if _, down := cheapen(base); down {
		t.Fatal("already-cheap configuration counted as a downgrade")
	}
	for _, m := range []verifyMode{verifyFeas, verifyAnalytic, verifyReplay, verifyAnalyticFirst} {
		cfg := base
		cfg.verify = m
		cheap, down := cheapen(cfg)
		if cheap.verify != verifyOff || !down {
			t.Fatalf("mode %v: cheapened verify %v, downgraded %v; want off, true", m, cheap.verify, down)
		}
	}
}

// TestPlanRejections pins the 4xx surface: bad parameters, bad bodies,
// and workloads that fail boundary validation.
func TestPlanRejections(t *testing.T) {
	ts := httptest.NewServer(New(Options{}).Handler())
	defer ts.Close()
	body := workloadBody(t, 8)

	cases := []struct {
		name, query string
		body        []byte
		want        int
	}{
		{"unknown metric", "metric=NOPE", body, http.StatusUnprocessableEntity},
		{"unknown wcet", "wcet=NOPE", body, http.StatusUnprocessableEntity},
		{"unknown dispatcher", "dispatcher=NOPE", body, http.StatusUnprocessableEntity},
		{"bad timeout", "timeout=-3s", body, http.StatusUnprocessableEntity},
		{"garbage body", "", []byte("not json"), http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, raw := postPlan(t, ts, c.query, c.body)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.want, raw)
		}
		var er errorResponse
		if err := json.Unmarshal(raw, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body malformed: %s", c.name, raw)
		}
	}

	// GET is not allowed on /plan.
	resp, err := http.Get(ts.URL + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /plan: %d", resp.StatusCode)
	}

	// A platform-free workload cannot be planned.
	var buf bytes.Buffer
	cfg := gen.Default(3)
	cfg.Seed = 8
	w := gen.MustGenerate(cfg)
	if err := graphio.WriteWorkload(&buf, w.Graph, nil); err != nil {
		t.Fatal(err)
	}
	resp2, raw := postPlan(t, ts, "", buf.Bytes())
	if resp2.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("platform-free workload: status %d (%s)", resp2.StatusCode, raw)
	}
}

// TestExactlyOneColdBuild is the service-level coalescing contract:
// parallel clients posting the identical workload cause exactly one
// cold pipeline build, observable in /metrics; everyone else is served
// by the cache or the in-flight build.
func TestExactlyOneColdBuild(t *testing.T) {
	const clients = 8
	ts := httptest.NewServer(New(Options{MaxInFlight: clients}).Handler())
	defer ts.Close()
	body := workloadBody(t, 9)

	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			raw, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d: %s", resp.StatusCode, raw)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	text := scrape(t, ts)
	if got := metricValue(t, text, "pland_builds_total"); got != 1 {
		t.Fatalf("pland_builds_total = %g, want exactly 1", got)
	}
	hits := metricValue(t, text, `pland_cache_hits_total`)
	coalesced := metricValue(t, text, `pland_coalesced_builds_total`)
	if hits+coalesced != clients-1 {
		t.Fatalf("hits (%g) + coalesced (%g) = %g, want %d", hits, coalesced, hits+coalesced, clients-1)
	}
	if got := metricValue(t, text, "pland_cached_plans"); got != 1 {
		t.Fatalf("pland_cached_plans = %g, want 1", got)
	}
}

// TestBackpressure pins the admission contract: with one slot and one
// queue seat both occupied, the next request is shed immediately with
// 429 and a Retry-After hint.
func TestBackpressure(t *testing.T) {
	srv := New(Options{MaxInFlight: 1, MaxQueue: 1})
	srv.holdBuild = make(chan struct{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body := workloadBody(t, 10)

	done := make(chan error, 2)
	post := func() {
		resp, err := http.Post(ts.URL+"/plan", "application/json", bytes.NewReader(body))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				err = fmt.Errorf("status %d", resp.StatusCode)
			}
		}
		done <- err
	}
	// The first two requests land one in the slot and one in the queue
	// seat (either order); queue depth 1 implies the slot is taken.
	go post()
	go post()
	waitGauge(t, ts, "pland_queue_depth", 1)

	// Third request: slot busy, queue full → shed.
	resp, raw := postPlan(t, ts, "", body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (%s)", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// Release the held builds; both earlier requests complete.
	close(srv.holdBuild)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("held request %d failed: %v", i, err)
		}
	}
	text := scrape(t, ts)
	if got := metricValue(t, text, `pland_requests_total{outcome="throttled"}`); got != 1 {
		t.Fatalf("throttled = %g, want 1", got)
	}
}

// waitGauge polls /metrics until the named gauge reaches want.
func waitGauge(t *testing.T, ts *httptest.Server, name string, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + ` (\S+)$`)
		if m := re.FindStringSubmatch(scrape(t, ts)); m != nil {
			if v, _ := strconv.ParseFloat(m[1], 64); v >= want {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("gauge %s never reached %g", name, want)
}

// TestDrain pins the shutdown contract: after Drain, /healthz flips to
// 503 and new plan requests are refused, while /metrics stays up for
// the final scrape.
func TestDrain(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz: %d", resp.StatusCode)
	}

	srv.Drain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(raw), "draining") {
		t.Fatalf("draining /healthz: %d %s", resp.StatusCode, raw)
	}

	resp2, raw := postPlan(t, ts, "", workloadBody(t, 11))
	if resp2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /plan: %d (%s)", resp2.StatusCode, raw)
	}
	if got := metricValue(t, scrape(t, ts), "pland_draining"); got != 1 {
		t.Fatalf("pland_draining = %g, want 1", got)
	}
}

// TestPlanTimeout pins the budget contract: a request whose budget is
// too small for even the first stage boundary comes back as 504.
func TestPlanTimeout(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// A 1ns budget is over before the pipeline's first stage gate.
	resp, raw := postPlan(t, ts, "timeout=1ns", workloadBody(t, 12))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%s)", resp.StatusCode, raw)
	}
	text := scrape(t, ts)
	if got := metricValue(t, text, `pland_requests_total{outcome="expired"}`); got != 1 {
		t.Fatalf("expired = %g, want 1", got)
	}
	if got := metricValue(t, text, "pland_canceled_builds_total"); got < 1 {
		t.Fatalf("pland_canceled_builds_total = %g, want >= 1", got)
	}
}
