package server

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/slicing"
)

// forceBrownout drives srv's admission controller to the wanted rung by
// feeding one synthetic over-rung window on a frozen clock, then pins
// the admit fraction back to 1 so only the ladder — not the AIMD coin —
// shapes the requests under test. The frozen clock keeps further
// windows from closing, so the rung holds for the rest of the test.
func forceBrownout(srv *Server, level brownoutLevel) {
	// Start ahead of any window already open — real-clock ones from
	// earlier requests, or a previous forceBrownout's frozen one — so
	// this clock can close windows.
	clock := time.Now().Add(time.Hour)
	srv.adm.mu.Lock()
	if srv.adm.windowEnd.After(clock) {
		clock = srv.adm.windowEnd
	}
	srv.adm.mu.Unlock()
	srv.adm.now = func() time.Time { return clock }
	var worst time.Duration
	switch level {
	case brownoutCheap:
		worst = srv.adm.opt.CheapAt
	case brownoutCacheOnly:
		worst = srv.adm.opt.CacheOnlyAt
	}
	srv.adm.observe(worst)
	clock = clock.Add(srv.adm.opt.Window)
	if got := srv.adm.currentLevel(); got != level {
		panic("forceBrownout: level " + got.String() + ", want " + level.String())
	}
	srv.adm.mu.Lock()
	srv.adm.frac = 1
	srv.adm.shedOptional = false
	srv.adm.mu.Unlock()
}

// planResp decodes the interesting fields of a /plan answer.
type planResp struct {
	Metric     string  `json:"metric"`
	Dispatcher string  `json:"dispatcher"`
	Quality    string  `json:"quality"`
	Feasible   bool    `json:"feasible"`
	PlanningMS float64 `json:"planningMS"`
}

func TestQualityFullOnNormalServe(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, raw := postPlan(t, ts, "metric=ADAPT-L", workloadBody(t, 31))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	if q := resp.Header.Get("X-Plan-Quality"); q != "full" {
		t.Fatalf("X-Plan-Quality = %q, want full", q)
	}
	var pr planResp
	mustUnmarshal(t, raw, &pr)
	if pr.Quality != "full" || pr.Metric != slicing.AdaptL().Name() {
		t.Fatalf("quality %q metric %q, want full/%s", pr.Quality, pr.Metric, slicing.AdaptL().Name())
	}
	if got := metricValue(t, scrape(t, ts), `pland_plans_total{quality="full"}`); got != 1 {
		t.Fatalf("full plans = %g, want 1", got)
	}
}

// TestBrownoutCheapSubstitutes: at the cheap rung a rich request is
// served with the NORM/time-driven configuration and tagged degraded —
// but a request that asked for the cheap configuration anyway keeps
// full quality, and a plan cached at full quality before the brownout
// still serves as full.
func TestBrownoutCheapSubstitutes(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Cache one workload at full quality before pressure hits.
	warm := workloadBody(t, 41)
	if resp, raw := postPlan(t, ts, "metric=ADAPT-L", warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-brownout plan: %d (%s)", resp.StatusCode, raw)
	}

	forceBrownout(srv, brownoutCheap)

	// A rich cold request is substituted and tagged.
	resp, raw := postPlan(t, ts, "metric=ADAPT-L&verify=1", workloadBody(t, 42))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	if q := resp.Header.Get("X-Plan-Quality"); q != "degraded" {
		t.Fatalf("X-Plan-Quality = %q, want degraded", q)
	}
	var pr planResp
	mustUnmarshal(t, raw, &pr)
	if pr.Metric != slicing.NORM().Name() || pr.Dispatcher != "time-driven" || pr.Quality != "degraded" {
		t.Fatalf("served %s/%s/%s, want NORM/time-driven/degraded", pr.Metric, pr.Dispatcher, pr.Quality)
	}

	// A request already at the cheap configuration is not a downgrade.
	resp, raw = postPlan(t, ts, "metric="+slicing.NORM().Name()+"&dispatcher=time-driven", workloadBody(t, 43))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	if q := resp.Header.Get("X-Plan-Quality"); q != "full" {
		t.Fatalf("cheap-config request X-Plan-Quality = %q, want full", q)
	}

	// The pre-brownout cached plan short-circuits the ladder.
	resp, raw = postPlan(t, ts, "metric=ADAPT-L", warm)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d (%s)", resp.StatusCode, raw)
	}
	if q := resp.Header.Get("X-Plan-Quality"); q != "full" {
		t.Fatalf("cached plan X-Plan-Quality = %q, want full", q)
	}

	text := scrape(t, ts)
	if got := metricValue(t, text, `pland_plans_total{quality="degraded"}`); got != 1 {
		t.Fatalf("degraded plans = %g, want 1", got)
	}
	if got := metricValue(t, text, "pland_brownout_level"); got != 1 {
		t.Fatalf("brownout level = %g, want 1", got)
	}
}

// TestBrownoutCacheOnly: at the deepest rung only resident plans are
// served — full-quality ones as full, degraded ones from an earlier
// brownout as degraded — and misses get 503 with a Retry-After hint.
func TestBrownoutCacheOnly(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	warm := workloadBody(t, 51)
	if resp, _ := postPlan(t, ts, "metric=ADAPT-L", warm); resp.StatusCode != http.StatusOK {
		t.Fatal("pre-brownout plan failed")
	}
	// Cache a degraded plan for another workload while at the cheap rung.
	forceBrownout(srv, brownoutCheap)
	cheapened := workloadBody(t, 52)
	if resp, _ := postPlan(t, ts, "metric=ADAPT-L", cheapened); resp.StatusCode != http.StatusOK {
		t.Fatal("cheap-rung plan failed")
	}

	forceBrownout(srv, brownoutCacheOnly)

	// Resident full-quality plan: served full.
	resp, _ := postPlan(t, ts, "metric=ADAPT-L", warm)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Plan-Quality") != "full" {
		t.Fatalf("cached full plan: %d %q, want 200 full", resp.StatusCode, resp.Header.Get("X-Plan-Quality"))
	}
	// Resident degraded plan (cheap key) beats a 503.
	resp, _ = postPlan(t, ts, "metric=ADAPT-L", cheapened)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Plan-Quality") != "degraded" {
		t.Fatalf("cached degraded plan: %d %q, want 200 degraded", resp.StatusCode, resp.Header.Get("X-Plan-Quality"))
	}
	// Miss: refused with a hint, never built.
	resp, raw := postPlan(t, ts, "metric=ADAPT-L", workloadBody(t, 53))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("cache-only miss: %d (%s), want 503", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("cache-only 503 carries no Retry-After")
	}

	text := scrape(t, ts)
	if got := metricValue(t, text, `pland_cache_only_total{outcome="hit"}`); got != 2 {
		t.Fatalf("cache-only hits = %g, want 2", got)
	}
	if got := metricValue(t, text, `pland_cache_only_total{outcome="miss"}`); got != 1 {
		t.Fatalf("cache-only misses = %g, want 1", got)
	}
	if got := metricValue(t, text, "pland_brownout_level"); got != 2 {
		t.Fatalf("brownout level = %g, want 2", got)
	}
}

// TestBrownoutRecovers closes clean windows and watches the ladder walk
// back to full service through the clean-streak hysteresis.
func TestBrownoutRecovers(t *testing.T) {
	srv := New(Options{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	clock := time.Now().Add(time.Hour)
	srv.adm.now = func() time.Time { return clock }
	srv.adm.observe(srv.adm.opt.CacheOnlyAt)
	clock = clock.Add(srv.adm.opt.Window)
	if srv.adm.currentLevel() != brownoutCacheOnly {
		t.Fatal("setup: not at cache-only")
	}
	// 2 × PromoteAfter clean windows: back to full.
	for i := 0; i < 2*srv.adm.opt.PromoteAfter; i++ {
		clock = clock.Add(srv.adm.opt.Window)
	}
	if l := srv.adm.currentLevel(); l != brownoutOff {
		t.Fatalf("level = %v after clean streaks, want off", l)
	}
	resp, _ := postPlan(t, ts, "metric=ADAPT-L", workloadBody(t, 61))
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Plan-Quality") != "full" {
		t.Fatalf("post-recovery plan: %d %q, want 200 full", resp.StatusCode, resp.Header.Get("X-Plan-Quality"))
	}
}
