package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"

	"repro/internal/arch"
	"repro/internal/cluster/client"
	"repro/internal/graphio"
	"repro/internal/pipeline"
	"repro/internal/taskgraph"
)

// POST /plan/batch: many workloads planned under one shared admission
// budget. The batch is not a bulk bypass — every item walks the same
// planOne path a single /plan request does (criticality rung, AIMD
// coin, bounded queue, brownout ladder), so a 100-item batch competes
// for capacity exactly like 100 single requests would, and under
// overload a batch comes back partially planned rather than all-or-
// nothing: each item carries its own status.
//
// In fleet mode the batch is fanned out along the ring: items are
// grouped by owning peer and each remote group is shipped as one
// routed sub-batch through the retry/hedge/breaker client, so a batch
// costs one round-trip per involved peer instead of one per item. A
// group whose owner (and ring fallbacks) cannot be reached degrades to
// local planning, mirroring the single-plan fallback policy.

// BatchRequest is the JSON body of POST /plan/batch. The query
// parameters (metric, wcet, dispatcher, verify, timeout) are shared by
// every item; criticality is per item.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchItem is one workload of a batch.
type BatchItem struct {
	// Criticality is the item's service class: "mandatory" (the
	// default) or "optional".
	Criticality string `json:"criticality,omitempty"`
	// Workload is a standard workload document — the same shape POST
	// /plan takes as its whole body.
	Workload json.RawMessage `json:"workload"`
}

// BatchResponse is the JSON answer: one result per item, in request
// order.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
}

// Batch item statuses.
const (
	// BatchPlanned: a 200 at full quality.
	BatchPlanned = "planned"
	// BatchDegraded: a 200 served under brownout with the cheap
	// configuration substituted.
	BatchDegraded = "degraded"
	// BatchShed: a policy refusal (admission 429 or cache-only 503);
	// retry after RetryAfterSeconds.
	BatchShed = "shed"
	// BatchFailed: a workload or planning fault; retrying the same item
	// cannot succeed.
	BatchFailed = "failed"
)

// BatchItemResult is the outcome of one item.
type BatchItemResult struct {
	// Status is planned, degraded, shed, or failed.
	Status string `json:"status"`
	// Code is the HTTP status the item would have received from /plan.
	Code int `json:"code"`
	// Error explains non-200 outcomes.
	Error string `json:"error,omitempty"`
	// RetryAfterSeconds hints when a shed item is worth retrying.
	RetryAfterSeconds int `json:"retryAfterSeconds,omitempty"`
	// Response is the plan answer for planned/degraded items.
	Response *PlanResponse `json:"response,omitempty"`
}

// batchWork is one decoded item awaiting planning.
type batchWork struct {
	crit taskgraph.Criticality
	g    *taskgraph.Graph
	p    *arch.Platform
	fp   uint64
	raw  json.RawMessage
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST a batch of workloads to /plan/batch")
		return
	}
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	cfg, err := s.parsePlanConfig(r.URL.Query())
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "reading batch: %v", err)
		return
	}
	var req BatchRequest
	if err := json.Unmarshal(raw, &req); err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "decoding batch: %v", err)
		return
	}
	if len(req.Items) == 0 {
		s.fail(w, http.StatusUnprocessableEntity, "batch carries no items")
		return
	}
	if len(req.Items) > s.opt.MaxBatchItems {
		s.fail(w, http.StatusUnprocessableEntity, "batch of %d items exceeds the %d-item limit",
			len(req.Items), s.opt.MaxBatchItems)
		return
	}
	s.batchRequests.Add(1)
	s.batchItems.Add(int64(len(req.Items)))

	routed := r.Header.Get(routedHeader) != ""
	if routed {
		s.routedIn.Add(1)
	}

	// Decode every item up front: a malformed workload fails its item
	// alone, never the batch.
	results := make([]BatchItemResult, len(req.Items))
	work := make([]*batchWork, len(req.Items))
	for i, it := range req.Items {
		crit, err := parseCriticality(it.Criticality)
		if err != nil {
			results[i] = s.batchResult(planOutcome{code: http.StatusUnprocessableEntity, errMsg: err.Error()})
			continue
		}
		g, p, err := graphio.ReadWorkload(bytes.NewReader(it.Workload))
		if err != nil {
			results[i] = s.batchResult(planOutcome{code: http.StatusUnprocessableEntity, errMsg: err.Error()})
			continue
		}
		if p == nil {
			results[i] = s.batchResult(planOutcome{code: http.StatusUnprocessableEntity,
				errMsg: "workload carries no platform; the planner needs one"})
			continue
		}
		work[i] = &batchWork{crit: crit, g: g, p: p, fp: pipeline.Fingerprint(g, p), raw: it.Workload}
	}

	// Fleet fan-out: ship each remote owner's items as one routed
	// sub-batch; whatever cannot be delivered is planned locally.
	if rt := s.opt.Router; rt != nil && !routed {
		groups := make(map[string][]int)
		for i, wk := range work {
			if wk == nil {
				continue
			}
			if owner := rt.target(wk.fp); owner.Name != rt.Self {
				groups[owner.Name] = append(groups[owner.Name], i)
			}
		}
		for _, idxs := range groups {
			s.batchRemote(r.Context(), rt, cfg, r.URL.RawQuery, work, idxs, results)
		}
	}

	// Everything still unplanned — locally owned items, fallbacks from
	// unreachable peers — walks the shared admission path sequentially,
	// so one batch cannot stampede the queue.
	for i, wk := range work {
		if wk == nil || results[i].Status != "" {
			continue
		}
		out := s.planOne(r.Context(), cfg, wk.crit, wk.g, wk.p)
		s.countOutcome(out)
		results[i] = s.batchResult(out)
	}
	writeJSON(w, http.StatusOK, BatchResponse{Items: results})
}

// batchRemote ships one owner group as a routed sub-batch through the
// fleet client and maps the per-item answers back to their original
// indices. On any failure the group is left unfilled for the local
// fallback pass; counting mirrors the single-plan proxy path.
func (s *Server) batchRemote(ctx context.Context, rt *Router, cfg planConfig, query string, work []*batchWork, idxs []int, results []BatchItemResult) {
	sub := BatchRequest{Items: make([]BatchItem, len(idxs))}
	for j, i := range idxs {
		sub.Items[j] = BatchItem{Criticality: work[i].crit.String(), Workload: work[i].raw}
	}
	body, err := json.Marshal(sub)
	if err != nil {
		return
	}
	res, err := rt.Client.Do(ctx, client.PlanRequest{
		Key:    work[idxs[0]].fp,
		Path:   "/plan/batch",
		Query:  query,
		Routed: true,
		Body:   body,
	})
	if err != nil || res == nil || res.Status != http.StatusOK {
		s.routedFallback.Add(1)
		return
	}
	var br BatchResponse
	if jerr := json.Unmarshal(res.Body, &br); jerr != nil || len(br.Items) != len(idxs) {
		s.routedFallback.Add(1)
		return
	}
	s.routedOut.Add(1)
	s.batchRoutedOut.Add(1)
	for j, i := range idxs {
		results[i] = br.Items[j]
	}
}

// batchResult folds a planOutcome into the per-item wire shape.
func (s *Server) batchResult(o planOutcome) BatchItemResult {
	res := BatchItemResult{Code: o.code}
	switch {
	case o.code == http.StatusOK && o.quality == pipeline.QualityDegraded:
		res.Status = BatchDegraded
		res.Response = o.resp
	case o.code == http.StatusOK:
		res.Status = BatchPlanned
		res.Response = o.resp
	case o.code == http.StatusTooManyRequests || o.code == http.StatusServiceUnavailable:
		res.Status = BatchShed
		res.Error = o.errMsg
		if o.retryAfter {
			res.RetryAfterSeconds = s.retryAfterSeconds()
		}
	default:
		res.Status = BatchFailed
		res.Error = o.errMsg
	}
	return res
}
