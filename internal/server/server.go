// Package server is the planning service: an HTTP/JSON front-end over
// the instrumented pipeline core. One process holds one shared plan
// cache and recorder; every request plans through them, so identical
// workloads are answered from cache and concurrent identical requests
// coalesce onto a single cold build (the cache's singleflight layer).
//
// The request path is admission → coalesce → build → respond:
//
//   - admission: at most MaxInFlight requests plan concurrently; up to
//     MaxQueue more wait for a slot, and anything beyond that is shed
//     immediately with 429 and a Retry-After hint — the service degrades
//     by refusing work it cannot start, not by queueing unboundedly.
//   - deadline: every request plans under a context with a wall-clock
//     budget (client-requested via ?timeout=, clamped to MaxTimeout).
//     The pipeline checks it at stage boundaries, so an abandoned or
//     expired request stops computing instead of finishing as a zombie.
//   - drain: Drain flips /healthz to 503 and rejects new plan requests;
//     in-flight builds finish normally (http.Server.Shutdown provides
//     the waiting).
//
// /metrics exports the pipeline recorder's aggregates and the admission
// gauges in the Prometheus text format, hand-rendered to keep the
// module dependency-free.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/deadline"
	"repro/internal/graphio"
	"repro/internal/pipeline"
	"repro/internal/slicing"
	"repro/internal/wcet"
)

// Options configures a Server. The zero value is usable; every field
// falls back to the documented default.
type Options struct {
	// MaxInFlight bounds concurrently planning requests; 0 means
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a planning slot; beyond it
	// requests are shed with 429. 0 means 64; negative means no queue
	// (shed whenever every slot is busy).
	MaxQueue int
	// DefaultTimeout is the per-request planning budget when the client
	// does not ask for one; 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested budgets; 0 means 2m.
	MaxTimeout time.Duration
	// CacheCapacity sizes the shared plan cache; 0 means 4096.
	CacheCapacity int
	// RetryAfter is the hint attached to 429 responses; 0 means 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds the request body; 0 means 16 MiB.
	MaxBodyBytes int64
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 64
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 4096
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	return o
}

// Server is the planning service state: the shared pipeline cache and
// recorder, the admission machinery, and the request counters. Create
// with New; serve its Handler.
type Server struct {
	opt   Options
	cache *pipeline.Cache
	rec   *pipeline.Recorder
	mux   *http.ServeMux

	// slots is the in-flight semaphore; queued counts requests waiting
	// for a slot; inFlight gauges requests actually planning.
	slots    chan struct{}
	queued   atomic.Int64
	inFlight atomic.Int64
	draining atomic.Bool

	// Request counters by outcome, for /metrics.
	served    atomic.Int64 // 200
	rejected  atomic.Int64 // 4xx workload or parameter faults
	throttled atomic.Int64 // 429 shed at admission
	expired   atomic.Int64 // 504 budget exceeded
	refused   atomic.Int64 // 503 draining

	// holdBuild, when non-nil, blocks every admitted request before it
	// plans; tests use it to hold slots occupied deterministically.
	holdBuild chan struct{}
}

// New returns a Server with its own plan cache and recorder.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:   opt,
		cache: pipeline.NewCache(opt.CacheCapacity),
		rec:   pipeline.NewRecorder(false),
		slots: make(chan struct{}, opt.MaxInFlight),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/plan", s.handlePlan)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into draining mode: /healthz turns 503 (so load
// balancers stop routing here) and new plan requests are refused.
// Requests already planning are unaffected; pair with
// http.Server.Shutdown to wait for them.
func (s *Server) Drain() { s.draining.Store(true) }

// PlanResponse is the JSON answer of POST /plan.
type PlanResponse struct {
	// Metric, WCET and Dispatcher echo the resolved configuration.
	Metric     string `json:"metric"`
	WCET       string `json:"wcet"`
	Dispatcher string `json:"dispatcher"`
	// Feasible, OverConstrained, ProvablyInfeasible and the measures
	// fold the plan verdict.
	Feasible           bool  `json:"feasible"`
	OverConstrained    bool  `json:"overConstrained,omitempty"`
	ProvablyInfeasible bool  `json:"provablyInfeasible,omitempty"`
	MaxLateness        int64 `json:"maxLateness"`
	MinLaxity          int64 `json:"minLaxity"`
	// Result carries the per-task assignment and placements in the same
	// shape cmd/taskgen and cmd/schedview archive.
	Result graphio.ResultJSON `json:"result"`
	// PlanningMS is the wall-clock planning time of the build that
	// produced the plan (0 for a cache hit whose build was instant).
	PlanningMS float64 `json:"planningMS"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	switch {
	case code == http.StatusTooManyRequests:
		s.throttled.Add(1)
	case code == http.StatusServiceUnavailable:
		s.refused.Add(1)
	case code == http.StatusGatewayTimeout:
		s.expired.Add(1)
	default:
		s.rejected.Add(1)
	}
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// admit takes a planning slot, waiting in the bounded queue if none is
// free. It returns a release func, or false when the queue is full or
// the request died while waiting.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	default:
	}
	if s.queued.Add(1) > int64(s.opt.MaxQueue) {
		s.queued.Add(-1)
		return nil, false
	}
	defer s.queued.Add(-1)
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	case <-ctx.Done():
		return nil, false
	}
}

// dispatcherByName resolves the ?dispatcher= parameter.
func dispatcherByName(name string) (pipeline.Dispatcher, error) {
	switch name {
	case "", "time-driven":
		return pipeline.TimeDriven(), nil
	case "planner":
		return pipeline.Planner(), nil
	case "insertion":
		return pipeline.Insertion(), nil
	case "preemptive":
		return pipeline.Preemptive(), nil
	}
	return pipeline.Dispatcher{}, fmt.Errorf("unknown dispatcher %q (want time-driven, planner, insertion, or preemptive)", name)
}

// strategyByName resolves the ?wcet= parameter.
func strategyByName(name string) (wcet.Strategy, error) {
	if name == "" {
		return wcet.AVG, nil
	}
	for _, st := range wcet.Strategies {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown WCET strategy %q", name)
}

// budget resolves the request's planning budget from ?timeout=.
func (s *Server) budget(raw string) (time.Duration, error) {
	if raw == "" {
		return s.opt.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q", raw)
	}
	if d > s.opt.MaxTimeout {
		d = s.opt.MaxTimeout
	}
	return d, nil
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST a workload to /plan")
		return
	}
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}

	q := r.URL.Query()
	metricName := q.Get("metric")
	if metricName == "" {
		metricName = slicing.AdaptL().Name()
	}
	metric, err := slicing.ByName(metricName)
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	strategy, err := strategyByName(q.Get("wcet"))
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	disp, err := dispatcherByName(q.Get("dispatcher"))
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	limit, err := s.budget(q.Get("timeout"))
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	g, p, err := graphio.ReadWorkload(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if p == nil {
		s.fail(w, http.StatusUnprocessableEntity, "workload carries no platform; the planner needs one")
		return
	}

	release, ok := s.admit(r.Context())
	if !ok {
		if err := r.Context().Err(); err != nil {
			// The client went away while queued; nothing to answer.
			s.fail(w, http.StatusServiceUnavailable, "request canceled while queued")
			return
		}
		w.Header().Set("Retry-After", strconv.Itoa(int((s.opt.RetryAfter+time.Second-1)/time.Second)))
		s.fail(w, http.StatusTooManyRequests, "planning queue is full (%d in flight, %d queued)",
			s.opt.MaxInFlight, s.opt.MaxQueue)
		return
	}
	defer release()
	if s.holdBuild != nil {
		<-s.holdBuild
	}

	ctx, cancel := context.WithTimeout(r.Context(), limit)
	defer cancel()

	b := &pipeline.Builder{
		Estimator:   pipeline.StrategyEstimator(strategy),
		Distributor: deadline.Sliced{Metric: metric, Params: slicing.CalibratedParams()},
		Dispatcher:  disp,
		Cache:       s.cache,
		Recorder:    s.rec,
	}
	if q.Get("verify") == "1" || q.Get("verify") == "true" {
		b.Verifier = pipeline.FeasVerifier()
	}

	s.inFlight.Add(1)
	plan, err := b.BuildContext(ctx, pipeline.Spec{Graph: g, Platform: p})
	s.inFlight.Add(-1)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		s.fail(w, http.StatusGatewayTimeout, "planning exceeded its %v budget", limit)
		return
	case errors.Is(err, context.Canceled):
		s.fail(w, http.StatusServiceUnavailable, "request canceled")
		return
	default:
		// Stage errors are properties of the submitted workload
		// (inconsistent graph, unschedulable windows), not of the server.
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	s.served.Add(1)
	writeJSON(w, http.StatusOK, PlanResponse{
		Metric:             metric.Name(),
		WCET:               strategy.String(),
		Dispatcher:         disp.Name,
		Feasible:           plan.Verdict.Feasible,
		OverConstrained:    plan.Verdict.OverConstrained,
		ProvablyInfeasible: plan.Verdict.ProvablyInfeasible,
		MaxLateness:        int64(plan.Verdict.MaxLateness),
		MinLaxity:          int64(plan.Verdict.MinLaxity),
		Result:             graphio.EncodeResult(plan.Assignment, plan.Schedule),
		PlanningMS:         float64(plan.Stats.Total()) / float64(time.Millisecond),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
