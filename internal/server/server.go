// Package server is the planning service: an HTTP/JSON front-end over
// the instrumented pipeline core. One process holds one shared plan
// cache and recorder; every request plans through them, so identical
// workloads are answered from cache and concurrent identical requests
// coalesce onto a single cold build (the cache's singleflight layer).
//
// The request path is admission → coalesce → build → respond:
//
//   - admission: at most MaxInFlight requests plan concurrently; up to
//     MaxQueue more wait for a slot, and anything beyond that is shed
//     immediately with 429 and a Retry-After hint — the service degrades
//     by refusing work it cannot start, not by queueing unboundedly.
//     The Retry-After hint is derived from the current queue depth and
//     jittered, so a thundering herd of rejected clients does not come
//     back in one synchronized wave.
//   - criticality-aware shedding: requests carry X-Plan-Criticality
//     (mandatory, the default, or optional). When queue depth crosses
//     the high-water mark the server enters shedding mode and rejects
//     Optional requests up front, keeping the remaining admission
//     capacity for Mandatory work; it leaves shedding mode when depth
//     falls below the low-water mark. The hysteresis mirrors the
//     mixed-criticality mode ladder in internal/degrade: degrade the
//     optional tier first, re-admit it only once pressure is clearly
//     gone.
//   - routing: with a Router configured (a pland fleet), a request whose
//     workload fingerprint is owned by another live peer is proxied
//     there — each plan is built once fleet-wide — and planned locally
//     when the owner cannot be reached.
//   - deadline: every request plans under a context with a wall-clock
//     budget (client-requested via ?timeout=, clamped to MaxTimeout).
//     The pipeline checks it at stage boundaries, so an abandoned or
//     expired request stops computing instead of finishing as a zombie.
//   - drain: Drain flips /healthz to 503 and rejects new plan requests;
//     in-flight builds finish normally (http.Server.Shutdown provides
//     the waiting).
//
// /metrics exports the pipeline recorder's aggregates and the admission
// gauges in the Prometheus text format, hand-rendered to keep the
// module dependency-free.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster/client"
	"repro/internal/deadline"
	"repro/internal/graphio"
	"repro/internal/pipeline"
	"repro/internal/slicing"
	"repro/internal/taskgraph"
	"repro/internal/verify"
	"repro/internal/wcet"
)

// Options configures a Server. The zero value is usable; every field
// falls back to the documented default.
type Options struct {
	// MaxInFlight bounds concurrently planning requests; 0 means
	// GOMAXPROCS.
	MaxInFlight int
	// MaxQueue bounds requests waiting for a planning slot; beyond it
	// requests are shed with 429. 0 means 64; negative means no queue
	// (shed whenever every slot is busy).
	MaxQueue int
	// DefaultTimeout is the per-request planning budget when the client
	// does not ask for one; 0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested budgets; 0 means 2m.
	MaxTimeout time.Duration
	// CacheCapacity sizes the shared plan cache; 0 means 4096.
	CacheCapacity int
	// RetryAfter is the base of the hint attached to 429 responses; the
	// actual hint scales with queue depth and is jittered. 0 means 1s.
	RetryAfter time.Duration
	// MaxBodyBytes bounds the request body; 0 means 16 MiB.
	MaxBodyBytes int64
	// ShedHighFrac is the queue-depth fraction (of MaxQueue) at which
	// the server starts shedding Optional-criticality requests; 0 means
	// 0.75. Negative disables criticality-aware shedding.
	ShedHighFrac float64
	// ShedLowFrac is the fraction below which shedding disengages; 0
	// means 0.25.
	ShedLowFrac float64
	// AdmitTarget is the queue-delay (sojourn) target of the adaptive
	// admission controller: windows whose worst queue wait exceeds it
	// shrink the admitted fraction of offered load and climb the
	// brownout ladder. 0 means 25ms; negative disables the controller
	// (static MaxQueue admission only).
	AdmitTarget time.Duration
	// AdmitWindow is the controller's measurement window; 0 means 250ms.
	AdmitWindow time.Duration
	// BrownoutCheapAt is the worst-window-sojourn rung at which cold
	// builds switch to the cheap NORM-metric configuration; 0 means
	// 2×AdmitTarget, negative disables the rung.
	BrownoutCheapAt time.Duration
	// BrownoutCacheOnlyAt is the rung at which cold builds stop
	// entirely (cache/read-through or 503); 0 means 8×AdmitTarget,
	// negative disables the rung.
	BrownoutCacheOnlyAt time.Duration
	// BrownoutPromoteAfter is how many consecutive clean windows
	// re-promote one brownout rung; 0 means 3.
	BrownoutPromoteAfter int
	// MaxBatchItems bounds the items of one POST /plan/batch; 0 means
	// 256.
	MaxBatchItems int
	// DefaultVerify is the verification mode applied when a request
	// carries no ?verify= parameter: "", "off", "feas", "analytic",
	// "replay", or "analytic-first" (validate with CheckVerifyMode).
	// Empty means off.
	DefaultVerify string
	// Router, when non-nil, puts the server in fleet mode: requests
	// owned by other live peers are proxied to them.
	Router *Router
	// Seed seeds the Retry-After jitter; 0 means 1.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = runtime.GOMAXPROCS(0)
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 64
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = 0
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 2 * time.Minute
	}
	if o.CacheCapacity <= 0 {
		o.CacheCapacity = 4096
	}
	if o.RetryAfter <= 0 {
		o.RetryAfter = time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	if o.ShedHighFrac == 0 {
		o.ShedHighFrac = 0.75
	}
	if o.ShedLowFrac <= 0 {
		o.ShedLowFrac = 0.25
	}
	if o.ShedLowFrac > o.ShedHighFrac {
		o.ShedLowFrac = o.ShedHighFrac
	}
	if o.MaxBatchItems <= 0 {
		o.MaxBatchItems = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Server is the planning service state: the shared pipeline cache and
// recorder, the admission machinery, and the request counters. Create
// with New; serve its Handler.
type Server struct {
	opt   Options
	cache *pipeline.Cache
	rec   *pipeline.Recorder
	mux   *http.ServeMux

	// slots is the in-flight semaphore; queued counts requests waiting
	// for a slot; inFlight gauges requests actually planning.
	slots    chan struct{}
	queued   atomic.Int64
	inFlight atomic.Int64
	draining atomic.Bool

	// Request counters by outcome, for /metrics.
	served    atomic.Int64 // 200
	rejected  atomic.Int64 // 4xx workload or parameter faults
	throttled atomic.Int64 // 429 shed at admission
	expired   atomic.Int64 // 504 budget exceeded
	refused   atomic.Int64 // 503 draining

	// Criticality-aware overload shedding: shedding is the hysteretic
	// mode bit (engaged at the high-water queue depth, released at the
	// low-water one); the counters split 429s by the criticality shed.
	shedding      atomic.Bool
	shedEngaged   atomic.Int64 // mode entries, for observing flappiness
	shedOptional  atomic.Int64 // optional requests shed by the ladder
	shedMandatory atomic.Int64 // mandatory requests shed (queue truly full)

	// adm is the queue-delay admission controller and brownout ladder
	// (see admission.go); the counters split its decisions.
	adm            *admitController
	admitShed      atomic.Int64 // requests shed by the AIMD admit coin
	verifyTotals   [numVerifyModes][numVerifyOutcomes]atomic.Int64
	plansFull      atomic.Int64 // 200s served at full quality
	plansDegraded  atomic.Int64 // 200s served degraded under brownout
	cacheOnlyHits  atomic.Int64 // cache-only rung answered from cache
	cacheOnlyMiss  atomic.Int64 // cache-only rung 503s (no resident plan)
	cheapSeeded    atomic.Int64 // brownout builds seeded from a prior full plan
	batchRequests  atomic.Int64 // POST /plan/batch calls
	batchItems     atomic.Int64 // items across all batch calls
	batchRoutedOut atomic.Int64 // batch item groups shipped to owning peers

	// Fleet routing counters.
	routedOut      atomic.Int64 // requests proxied to their owning peer
	routedFallback atomic.Int64 // proxy exhausted, planned locally instead
	routedIn       atomic.Int64 // routed requests received from peers

	// Warm-fill state and counters (see warmfill.go).
	hints        hintStore
	warmRounds   atomic.Int64 // completed warm-fill rounds
	warmPulled   atomic.Int64 // plans pulled from peer digests
	warmPushed   atomic.Int64 // hinted plans delivered to risen owners
	warmHinted   atomic.Int64 // handoff hints recorded
	warmErrors   atomic.Int64 // digest/fill/push round-trips that failed
	warmReads    atomic.Int64 // read-through sweeps before non-owner builds
	fillServed   atomic.Int64 // GET /cache/fill answered with a plan
	fillMisses   atomic.Int64 // GET /cache/fill for a non-resident plan
	fillAccepted atomic.Int64 // POST /cache/fill plans installed

	// readThrough throttles per-workload read-through sweeps (see
	// warmReadThrough).
	readMu   sync.Mutex
	readLast map[uint64]time.Time

	// Snapshot counters (see warmfill.go).
	snapSaves       atomic.Int64 // successful snapshot saves
	snapLoads       atomic.Int64 // successful snapshot loads
	snapSavedPlans  atomic.Int64 // plans in the latest saved snapshot
	snapLoadedPlans atomic.Int64 // plans restored from snapshots
	snapErrors      atomic.Int64 // failed saves/loads

	// rnd drives the Retry-After jitter.
	rmu sync.Mutex
	rnd *rand.Rand

	// holdBuild, when non-nil, blocks every admitted request before it
	// plans; tests use it to hold slots occupied deterministically.
	holdBuild chan struct{}
}

// New returns a Server with its own plan cache and recorder.
func New(opt Options) *Server {
	opt = opt.withDefaults()
	s := &Server{
		opt:   opt,
		cache: pipeline.NewCache(opt.CacheCapacity),
		rec:   pipeline.NewRecorder(false),
		slots: make(chan struct{}, opt.MaxInFlight),
		rnd:   rand.New(rand.NewSource(opt.Seed)),
		adm: newAdmitController(admitOptions{
			Target:       opt.AdmitTarget,
			Window:       opt.AdmitWindow,
			CheapAt:      opt.BrownoutCheapAt,
			CacheOnlyAt:  opt.BrownoutCacheOnlyAt,
			PromoteAfter: opt.BrownoutPromoteAfter,
			Seed:         opt.Seed,
		}),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/plan", s.handlePlan)
	s.mux.HandleFunc("/plan/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/cache/digest", s.handleCacheDigest)
	s.mux.HandleFunc("/cache/fill", s.handleCacheFill)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain puts the server into draining mode: /healthz turns 503 (so load
// balancers stop routing here) and new plan requests are refused.
// Requests already planning are unaffected; pair with
// http.Server.Shutdown to wait for them.
func (s *Server) Drain() { s.draining.Store(true) }

// PlanResponse is the JSON answer of POST /plan.
type PlanResponse struct {
	// Metric, WCET and Dispatcher echo the resolved configuration.
	Metric     string `json:"metric"`
	WCET       string `json:"wcet"`
	Dispatcher string `json:"dispatcher"`
	// Feasible, OverConstrained, ProvablyInfeasible and the measures
	// fold the plan verdict.
	Feasible           bool  `json:"feasible"`
	OverConstrained    bool  `json:"overConstrained,omitempty"`
	ProvablyInfeasible bool  `json:"provablyInfeasible,omitempty"`
	MaxLateness        int64 `json:"maxLateness"`
	MinLaxity          int64 `json:"minLaxity"`
	// Proof is the verifier's verdict on the served plan ("none",
	// "accepted", "rejected", "inconclusive"); empty when the request
	// ran without verification.
	Proof string `json:"proof,omitempty"`
	// Result carries the per-task assignment and placements in the same
	// shape cmd/taskgen and cmd/schedview archive.
	Result graphio.ResultJSON `json:"result"`
	// PlanningMS is the wall-clock planning time of the build that
	// produced the plan (0 for a cache hit whose build was instant).
	PlanningMS float64 `json:"planningMS"`
	// Quality is "full" or "degraded": degraded marks a plan built
	// under brownout with the cheap configuration substituted for a
	// richer one the client asked for. Also sent as X-Plan-Quality.
	Quality string `json:"quality"`
}

// errorResponse is the JSON body of every non-200 answer.
type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) fail(w http.ResponseWriter, code int, format string, args ...any) {
	switch {
	case code == http.StatusTooManyRequests:
		s.throttled.Add(1)
	case code == http.StatusServiceUnavailable:
		s.refused.Add(1)
	case code == http.StatusGatewayTimeout:
		s.expired.Add(1)
	default:
		s.rejected.Add(1)
	}
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// admit takes a planning slot, waiting in the bounded queue if none is
// free. It returns a release func, or false when the queue is full or
// the request died while waiting. Every request that actually queued
// feeds its sojourn to the admission controller — on both outcomes,
// since a request that gave up after 80ms in queue is exactly as loud
// an overload signal as one that got a slot after 80ms. Fast-path
// admissions (a free slot, zero wait) are not observed; the controller
// keys on the worst sojourn per window, which zeros cannot move.
func (s *Server) admit(ctx context.Context) (release func(), ok bool) {
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	default:
	}
	if s.queued.Add(1) > int64(s.opt.MaxQueue) {
		s.queued.Add(-1)
		return nil, false
	}
	start := time.Now()
	defer func() {
		s.queued.Add(-1)
		s.adm.observe(time.Since(start))
	}()
	select {
	case s.slots <- struct{}{}:
		return func() { <-s.slots }, true
	case <-ctx.Done():
		return nil, false
	}
}

// dispatcherByName resolves the ?dispatcher= parameter.
func dispatcherByName(name string) (pipeline.Dispatcher, error) {
	switch name {
	case "", "time-driven":
		return pipeline.TimeDriven(), nil
	case "planner":
		return pipeline.Planner(), nil
	case "insertion":
		return pipeline.Insertion(), nil
	case "preemptive":
		return pipeline.Preemptive(), nil
	}
	return pipeline.Dispatcher{}, fmt.Errorf("unknown dispatcher %q (want time-driven, planner, insertion, or preemptive)", name)
}

// strategyByName resolves the ?wcet= parameter.
func strategyByName(name string) (wcet.Strategy, error) {
	if name == "" {
		return wcet.AVG, nil
	}
	for _, st := range wcet.Strategies {
		if st.String() == name {
			return st, nil
		}
	}
	return 0, fmt.Errorf("unknown WCET strategy %q", name)
}

// budget resolves the request's planning budget from ?timeout=.
func (s *Server) budget(raw string) (time.Duration, error) {
	if raw == "" {
		return s.opt.DefaultTimeout, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d <= 0 {
		return 0, fmt.Errorf("bad timeout %q", raw)
	}
	if d > s.opt.MaxTimeout {
		d = s.opt.MaxTimeout
	}
	return d, nil
}

// Fleet request headers.
const (
	// criticalityHeader lets a client declare how sheddable a request
	// is: "mandatory" (the default) or "optional".
	criticalityHeader = "X-Plan-Criticality"
	// routedHeader marks a request already forwarded by a peer; the
	// receiver plans locally, never proxies again.
	routedHeader = "X-Plan-Routed"
)

// parseCriticality resolves the X-Plan-Criticality header. Absence
// means Mandatory, so pre-fleet clients keep their old service class.
func parseCriticality(h string) (taskgraph.Criticality, error) {
	switch strings.ToLower(strings.TrimSpace(h)) {
	case "", "mandatory":
		return taskgraph.Mandatory, nil
	case "optional":
		return taskgraph.Optional, nil
	}
	return 0, fmt.Errorf("bad %s %q (want mandatory or optional)", criticalityHeader, h)
}

// updateShedding advances the hysteretic shed ladder from the current
// queue depth and reports whether Optional requests are being shed:
// engage at ≥ ShedHighFrac·MaxQueue waiting requests, release at ≤
// ShedLowFrac·MaxQueue. The gap between the marks is what keeps a
// queue hovering near the threshold from flapping the mode bit on
// every request, exactly like the degrade controller's clean-streak
// hysteresis.
func (s *Server) updateShedding() bool {
	if s.opt.ShedHighFrac < 0 || s.opt.MaxQueue == 0 {
		return false
	}
	depth := int(s.queued.Load())
	high := int(math.Ceil(s.opt.ShedHighFrac * float64(s.opt.MaxQueue)))
	if high < 1 {
		high = 1
	}
	low := int(math.Floor(s.opt.ShedLowFrac * float64(s.opt.MaxQueue)))
	if s.shedding.Load() {
		if depth <= low {
			s.shedding.Store(false)
		}
	} else if depth >= high {
		if s.shedding.CompareAndSwap(false, true) {
			s.shedEngaged.Add(1)
		}
	}
	return s.shedding.Load()
}

// retryAfterSeconds derives the 429 hint from current pressure: the
// configured base scaled by up to 3× as the queue fills, jittered
// ±25% so shed clients do not return in one synchronized wave, and
// rounded up to whole seconds (the header's unit).
func (s *Server) retryAfterSeconds() int {
	fill := 0.0
	if s.opt.MaxQueue > 0 {
		fill = float64(s.queued.Load()) / float64(s.opt.MaxQueue)
		if fill > 1 {
			fill = 1
		}
	}
	d := float64(s.opt.RetryAfter) * (1 + 2*fill)
	s.rmu.Lock()
	jitter := 0.75 + 0.5*s.rnd.Float64()
	s.rmu.Unlock()
	secs := int(math.Ceil(time.Duration(d * jitter).Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// reject429 sheds a request with the queue-pressure-derived hint.
func (s *Server) reject429(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.fail(w, http.StatusTooManyRequests, format, args...)
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.fail(w, http.StatusMethodNotAllowed, "POST a workload to /plan")
		return
	}
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	crit, err := parseCriticality(r.Header.Get(criticalityHeader))
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	cfg, err := s.parsePlanConfig(r.URL.Query())
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}

	// The body is buffered rather than streamed so a routed request can
	// forward the identical bytes to the owning peer.
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes))
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "reading workload: %v", err)
		return
	}
	g, p, err := graphio.ReadWorkload(bytes.NewReader(raw))
	if err != nil {
		s.fail(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	if p == nil {
		s.fail(w, http.StatusUnprocessableEntity, "workload carries no platform; the planner needs one")
		return
	}

	routed := r.Header.Get(routedHeader) != ""
	if routed {
		s.routedIn.Add(1)
	}
	if rt := s.opt.Router; rt != nil && !routed {
		key := pipeline.Fingerprint(g, p)
		if target := rt.target(key); target.Name != rt.Self {
			res, err := rt.Client.Do(r.Context(), client.PlanRequest{
				Key:         key,
				Query:       r.URL.RawQuery,
				Criticality: crit.String(),
				Routed:      true,
				Body:        raw,
			})
			if err == nil {
				s.routedOut.Add(1)
				relay(w, res)
				return
			}
			// Owner and every fallback unreachable: plan here rather than
			// fail the request. Worse cache locality beats an error.
			s.routedFallback.Add(1)
		}
	}

	s.writeOutcome(w, s.planOne(r.Context(), cfg, crit, g, p))
}

// verifyMode selects the verification stage of a plan request.
type verifyMode int

const (
	// verifyOff runs no verifier.
	verifyOff verifyMode = iota
	// verifyFeas runs the O(n²) necessary-condition checks only
	// (reject/inconclusive, never accept).
	verifyFeas
	// verifyAnalytic proves deadlines analytically (holistic RTA);
	// three-valued.
	verifyAnalytic
	// verifyReplay replays the dispatched schedule through the
	// simulator; accept/reject, never inconclusive.
	verifyReplay
	// verifyAnalyticFirst tries the analytic proof and falls back to
	// replay when it is inconclusive.
	verifyAnalyticFirst
)

// numVerifyModes and numVerifyOutcomes size the pland_verify_total
// counter matrix.
const (
	numVerifyModes    = int(verifyAnalyticFirst) + 1
	numVerifyOutcomes = int(pipeline.VerifyInconclusive) + 1
)

// String implements fmt.Stringer.
func (m verifyMode) String() string {
	switch m {
	case verifyOff:
		return "off"
	case verifyFeas:
		return "feas"
	case verifyAnalytic:
		return "analytic"
	case verifyReplay:
		return "replay"
	case verifyAnalyticFirst:
		return "analytic-first"
	}
	return fmt.Sprintf("verifyMode(%d)", int(m))
}

// verifyModeByName resolves the ?verify= parameter; "1"/"true" keep
// their historical meaning of the feasibility verifier.
func verifyModeByName(name string) (verifyMode, error) {
	switch name {
	case "", "0", "false", "off":
		return verifyOff, nil
	case "1", "true", "feas":
		return verifyFeas, nil
	case "analytic":
		return verifyAnalytic, nil
	case "replay":
		return verifyReplay, nil
	case "analytic-first":
		return verifyAnalyticFirst, nil
	}
	return verifyOff, fmt.Errorf("unknown verify mode %q (want off, feas, analytic, replay, or analytic-first)", name)
}

// CheckVerifyMode validates a verify-mode name (the cmd/pland -verify
// flag) without resolving it.
func CheckVerifyMode(name string) error {
	_, err := verifyModeByName(name)
	return err
}

// planConfig is one request's resolved planning configuration.
type planConfig struct {
	metric   slicing.Metric
	strategy wcet.Strategy
	disp     pipeline.Dispatcher
	verify   verifyMode
	limit    time.Duration
}

// parsePlanConfig resolves the query parameters shared by /plan and
// /plan/batch.
func (s *Server) parsePlanConfig(q url.Values) (planConfig, error) {
	var cfg planConfig
	name := q.Get("metric")
	if name == "" {
		name = slicing.AdaptL().Name()
	}
	metric, err := slicing.ByName(name)
	if err != nil {
		return cfg, err
	}
	cfg.metric = metric
	if cfg.strategy, err = strategyByName(q.Get("wcet")); err != nil {
		return cfg, err
	}
	if cfg.disp, err = dispatcherByName(q.Get("dispatcher")); err != nil {
		return cfg, err
	}
	if cfg.limit, err = s.budget(q.Get("timeout")); err != nil {
		return cfg, err
	}
	mode := q.Get("verify")
	if mode == "" {
		mode = s.opt.DefaultVerify
	}
	if cfg.verify, err = verifyModeByName(mode); err != nil {
		return cfg, err
	}
	// The analytic proof models the time-driven EDF dispatcher's busy
	// waits; under any other dispatcher its bounds say nothing.
	if (cfg.verify == verifyAnalytic || cfg.verify == verifyAnalyticFirst) &&
		cfg.disp.Name != pipeline.TimeDriven().Name {
		return cfg, fmt.Errorf("verify=%s requires the time-driven dispatcher (got %s)", cfg.verify, cfg.disp.Name)
	}
	return cfg, nil
}

// builder materializes the pipeline builder for cfg; plans it builds
// cold carry the quality tag.
func (s *Server) builder(cfg planConfig, quality pipeline.Quality) *pipeline.Builder {
	b := &pipeline.Builder{
		Estimator:   pipeline.StrategyEstimator(cfg.strategy),
		Distributor: deadline.Sliced{Metric: cfg.metric, Params: slicing.CalibratedParams()},
		Dispatcher:  cfg.disp,
		Cache:       s.cache,
		Recorder:    s.rec,
		Quality:     quality,
	}
	switch cfg.verify {
	case verifyFeas:
		b.Verifier = pipeline.FeasVerifier()
	case verifyAnalytic:
		b.Verifier = verify.AnalyticVerifier()
	case verifyReplay:
		b.Verifier = verify.ReplayVerifier()
	case verifyAnalyticFirst:
		b.Verifier = verify.AnalyticFirstVerifier()
	}
	return b
}

// cheapen strips cfg to the brownout build — the NORM metric (identity
// virtual costs, no parallel-set analysis), time-driven dispatch, no
// verification — and reports whether that is actually a downgrade from
// what the client asked for. A request that already asked for the
// cheap configuration is served as-is at full quality: brownout
// substitutes, it never relabels.
func cheapen(cfg planConfig) (planConfig, bool) {
	cheap := cfg
	cheap.metric = slicing.NORM()
	cheap.disp = pipeline.TimeDriven()
	cheap.verify = verifyOff
	downgraded := cfg.metric.Name() != cheap.metric.Name() ||
		cfg.disp.Name != cheap.disp.Name || cfg.verify != verifyOff
	return cheap, downgraded
}

// buildCheap plans a brownout-substituted build. A prior full-quality
// plan of the same workload under the same WCET strategy already paid
// the estimator stage; when one is resident (any metric or dispatcher),
// replanning off it with an empty delta reuses its estimates and skips
// estimation entirely — the cheapest legitimate cold build the rung can
// serve. With no such plan the path degenerates to a plain cheap build.
// orig is the configuration the client asked for: its strategy names the
// estimator a seed plan must have run.
func (s *Server) buildCheap(ctx context.Context, served, orig planConfig, spec pipeline.Spec) (*pipeline.Plan, error) {
	b := s.builder(served, pipeline.QualityDegraded)
	estName := orig.strategy.String()
	prev, ok := s.cache.LookupWorkload(pipeline.Fingerprint(spec.Graph, spec.Platform),
		func(p *pipeline.Plan) bool {
			return p.Quality == pipeline.QualityFull && p.Estimator == estName
		})
	if !ok {
		return b.BuildContext(ctx, spec)
	}
	plan, _, err := b.NewReplanner().RebuildContext(ctx, prev, pipeline.Delta{})
	if err == nil {
		s.cheapSeeded.Add(1)
	}
	return plan, err
}

// planOutcome is the result of planning one workload through the local
// admission path.
type planOutcome struct {
	code       int
	resp       *PlanResponse // non-nil iff code is 200
	errMsg     string
	quality    pipeline.Quality
	retryAfter bool // attach a pressure-scaled Retry-After hint
}

// planOne plans one workload locally under the full overload policy —
// the criticality rung, the AIMD admit coin, the bounded queue, and
// the brownout ladder. It is the shared core of POST /plan and of each
// /plan/batch item, which is what makes a batch spend the same
// admission budget as the equivalent stream of single requests.
func (s *Server) planOne(ctx context.Context, cfg planConfig, crit taskgraph.Criticality, g *taskgraph.Graph, p *arch.Platform) planOutcome {
	// First rung: under pressure the optional tier is refused outright
	// so the queue seat it would have taken stays available to
	// mandatory work. Either pressure signal engages the rung — queue
	// depth (the static ladder) or queue delay (the controller).
	if (s.updateShedding() || s.adm.sheddingOptional()) && crit == taskgraph.Optional {
		s.shedOptional.Add(1)
		return planOutcome{code: http.StatusTooManyRequests, retryAfter: true,
			errMsg: "shedding optional work under overload"}
	}
	// Second rung: while queue delay sits over target the AIMD coin
	// sheds a growing fraction of everything else, which is what holds
	// the queue wait near the target instead of at the timeout cliff.
	if !s.adm.admit() {
		s.admitShed.Add(1)
		if crit == taskgraph.Optional {
			s.shedOptional.Add(1)
		} else {
			s.shedMandatory.Add(1)
		}
		return planOutcome{code: http.StatusTooManyRequests, retryAfter: true,
			errMsg: "admission controller shedding: queue delay over target"}
	}

	release, ok := s.admit(ctx)
	if !ok {
		if ctx.Err() != nil {
			// The client went away while queued; nothing to answer.
			return planOutcome{code: http.StatusServiceUnavailable,
				errMsg: "request canceled while queued"}
		}
		if crit == taskgraph.Optional {
			s.shedOptional.Add(1)
		} else {
			s.shedMandatory.Add(1)
		}
		return planOutcome{code: http.StatusTooManyRequests, retryAfter: true,
			errMsg: fmt.Sprintf("planning queue is full (%d in flight, %d queued)",
				s.opt.MaxInFlight, s.opt.MaxQueue)}
	}
	defer release()
	if s.holdBuild != nil {
		<-s.holdBuild
	}

	bctx, cancel := context.WithTimeout(ctx, cfg.limit)
	defer cancel()
	spec := pipeline.Spec{Graph: g, Platform: p}

	// Brownout ladder: decide what this request's cold work may cost.
	// Cached plans always serve at the quality they were built at; the
	// ladder only governs new builds.
	served, quality := cfg, pipeline.QualityFull
	if level := s.adm.currentLevel(); level > brownoutOff {
		// A resident plan of the requested configuration short-circuits
		// any rung at full quality.
		if plan, _, err := s.builder(cfg, pipeline.QualityFull).Probe(spec); err == nil && plan != nil {
			if level == brownoutCacheOnly {
				s.cacheOnlyHits.Add(1)
			}
			return s.respond(cfg, plan, pipeline.QualityFull)
		}
		cheap, downgraded := cheapen(cfg)
		switch level {
		case brownoutCheap:
			if downgraded {
				served, quality = cheap, pipeline.QualityDegraded
			}
		case brownoutCacheOnly:
			// No cold builds at all. In fleet mode, sweep the peers'
			// caches for this fingerprint first — some replica may hold
			// the plan this process never built.
			if s.opt.Router != nil {
				s.warmReadThrough(bctx, pipeline.Fingerprint(g, p))
				if plan, _, err := s.builder(cfg, pipeline.QualityFull).Probe(spec); err == nil && plan != nil {
					s.cacheOnlyHits.Add(1)
					return s.respond(cfg, plan, pipeline.QualityFull)
				}
			}
			// A degraded plan cached by an earlier brownout beats a 503.
			if downgraded {
				if plan, _, err := s.builder(cheap, pipeline.QualityDegraded).Probe(spec); err == nil && plan != nil {
					s.cacheOnlyHits.Add(1)
					return s.respond(cheap, plan, pipeline.QualityDegraded)
				}
			}
			s.cacheOnlyMiss.Add(1)
			return planOutcome{code: http.StatusServiceUnavailable, retryAfter: true,
				errMsg: "browned out: serving cached plans only, none resident for this workload"}
		}
	}

	// A local build on a peer that is not the workload's static owner is
	// the recovery path — the owner was unreachable, or the client was
	// re-routed here. Before paying a cold build, read through the other
	// peers' caches: some replica usually survives a single-peer outage.
	if rt := s.opt.Router; rt != nil {
		if fp := pipeline.Fingerprint(g, p); s.replicaRank(fp) > 0 {
			s.warmReadThrough(bctx, fp)
		}
	}

	s.inFlight.Add(1)
	var plan *pipeline.Plan
	var err error
	if quality == pipeline.QualityDegraded {
		plan, err = s.buildCheap(bctx, served, cfg, spec)
	} else {
		plan, err = s.builder(served, quality).BuildContext(bctx, spec)
	}
	s.inFlight.Add(-1)
	switch {
	case err == nil:
	case errors.Is(err, context.DeadlineExceeded):
		return planOutcome{code: http.StatusGatewayTimeout,
			errMsg: fmt.Sprintf("planning exceeded its %v budget", cfg.limit)}
	case errors.Is(err, context.Canceled):
		return planOutcome{code: http.StatusServiceUnavailable, errMsg: "request canceled"}
	default:
		// Stage errors are properties of the submitted workload
		// (inconsistent graph, unschedulable windows), not of the server.
		return planOutcome{code: http.StatusUnprocessableEntity, errMsg: err.Error()}
	}
	return s.respond(served, plan, quality)
}

// respond folds a plan into the 200 outcome, echoing the configuration
// it was actually built with (under brownout that is the substituted
// cheap one, so clients can see what they got).
func (s *Server) respond(cfg planConfig, plan *pipeline.Plan, quality pipeline.Quality) planOutcome {
	// Serving a key whose static ring owner is elsewhere means the
	// owner missed it (unreachable, or restarted cold): remember to
	// hand the plan off when it is reachable again.
	s.maybeHint(plan.Key)
	proof := ""
	if cfg.verify != verifyOff {
		if o := plan.Verdict.Proof; int(o) < numVerifyOutcomes {
			s.verifyTotals[cfg.verify][o].Add(1)
		}
		proof = plan.Verdict.Proof.String()
	}
	return planOutcome{
		code:    http.StatusOK,
		quality: quality,
		resp: &PlanResponse{
			Metric:             cfg.metric.Name(),
			WCET:               cfg.strategy.String(),
			Dispatcher:         cfg.disp.Name,
			Feasible:           plan.Verdict.Feasible,
			OverConstrained:    plan.Verdict.OverConstrained,
			ProvablyInfeasible: plan.Verdict.ProvablyInfeasible,
			Proof:              proof,
			MaxLateness:        int64(plan.Verdict.MaxLateness),
			MinLaxity:          int64(plan.Verdict.MinLaxity),
			Result:             graphio.EncodeResult(plan.Assignment, plan.Schedule),
			PlanningMS:         float64(plan.Stats.Total()) / float64(time.Millisecond),
			Quality:            quality.String(),
		},
	}
}

// qualityHeader carries the served quality ("full" or "degraded") on
// every 200 from /plan.
const qualityHeader = "X-Plan-Quality"

// countOutcome advances the outcome counters for one planned item.
func (s *Server) countOutcome(o planOutcome) {
	switch o.code {
	case http.StatusOK:
		s.served.Add(1)
		if o.quality == pipeline.QualityDegraded {
			s.plansDegraded.Add(1)
		} else {
			s.plansFull.Add(1)
		}
	case http.StatusTooManyRequests:
		s.throttled.Add(1)
	case http.StatusServiceUnavailable:
		s.refused.Add(1)
	case http.StatusGatewayTimeout:
		s.expired.Add(1)
	default:
		s.rejected.Add(1)
	}
}

// writeOutcome renders a planOutcome as the HTTP answer of /plan.
func (s *Server) writeOutcome(w http.ResponseWriter, o planOutcome) {
	s.countOutcome(o)
	if o.retryAfter {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	if o.code == http.StatusOK {
		w.Header().Set(qualityHeader, o.quality.String())
		writeJSON(w, http.StatusOK, o.resp)
		return
	}
	writeJSON(w, o.code, errorResponse{Error: o.errMsg})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
