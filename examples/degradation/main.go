// Graceful degradation: label a workload with mixed criticality, build
// the degradation mode ladder (each mode a reduced task graph whose
// end-to-end deadlines are re-sliced and re-verified), then drive the
// online mode-change controller through a fault episode — overload
// forces it up the ladder, and a sustained calm stretch earns the shed
// work bounded, backed-off re-admission probes. The mandatory subgraph
// survives in every mode by construction.
//
// `go run ./cmd/sweep -study degrade` runs the full paired study.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultWorkloadConfig(3)
	cfg.Seed = 23
	// Tight laxity: this workload is slightly overloaded even
	// fault-free, so the ladder has real work to do from frame one.
	cfg.OLR = 0.55
	cfg.OptionalProb = 0.5

	w, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	optional := 0
	for i := 0; i < w.Graph.NumTasks(); i++ {
		if w.Graph.Task(i).Criticality == repro.Optional {
			optional++
		}
	}
	fmt.Printf("workload: %d tasks (%d optional) on %s\n",
		w.Graph.NumTasks(), optional, w.Platform)

	// The mode ladder: level 0 is the full application; each level up
	// sheds the cheapest sheddable optional work. Every mode is fully
	// re-planned: WCET estimates, deadline slicing, and the dispatcher
	// all run on the reduced graph.
	modes, err := repro.DegradeModes(w.Graph, repro.DegradeOptions{Policy: repro.DegradeShedLowestValue})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmode ladder (shed-value policy):")
	type plan struct {
		asg *repro.Assignment
		s   *repro.Schedule
	}
	plans := make([]plan, len(modes))
	for i, m := range modes {
		est, err := repro.Estimates(m.Graph, w.Platform, repro.WCETAvg)
		if err != nil {
			log.Fatal(err)
		}
		asg, err := repro.Distribute(m.Graph, est, w.Platform.M(), repro.AdaptL(), repro.CalibratedParams())
		if err != nil {
			log.Fatal(err)
		}
		s, err := repro.Dispatch(m.Graph, w.Platform, asg)
		if err != nil {
			log.Fatal(err)
		}
		plans[i] = plan{asg, s}
		fmt.Printf("  level %d: %2d tasks (%d shed), quality %4.0f%%, re-verified feasible=%v\n",
			m.Level, m.Graph.NumTasks(), m.Shed, 100*m.Quality, s.Feasible)
	}

	// The failure-instant horizon: the latest original end-to-end
	// deadline (mode-independent, so every level faces the same episode).
	var span repro.Time
	for _, o := range w.Graph.Outputs() {
		if d := w.Graph.Task(o).ETEDeadline; d > span {
			span = d
		}
	}

	// A fault episode: calm, then a harsh burst, then calm again. One
	// frame = one end-to-end execution of the current mode under that
	// frame's materialized fault trace, projected onto the mode's
	// surviving tasks.
	episode := []float64{0, 0, 1, 1, 1, 0, 0, 0, 0, 0, 0, 0}
	ctl := repro.NewModeController(repro.ModeControllerOptions{
		MaxLevel:    len(modes) - 1,
		CleanStreak: 2, // probe down quickly so the episode fits a demo
	})
	fmt.Println("\nepisode (frame: intensity, level run, observation -> decision):")
	for f, intensity := range episode {
		lv := ctl.Level()
		m := modes[lv]
		plan := repro.ScaledFaultPlan(intensity, int64(100+f))
		tr, err := repro.MaterializeFaults(plan, w.Graph, w.Platform, span)
		if err != nil {
			log.Fatal(err)
		}
		ir, err := repro.InjectFaults(m.Graph, w.Platform, plans[lv].asg, plans[lv].s,
			tr.Project(m.New2Old), true)
		if err != nil {
			log.Fatal(err)
		}
		d := ir.Degradation
		obs := repro.ModeObservation{
			MandatoryMisses: d.MandatoryMisses,
			OptionalMisses:  d.Misses - d.MandatoryMisses,
			Overruns:        d.Overruns,
			Aborts:          d.Aborted,
		}
		decision := ctl.Observe(obs)
		fmt.Printf("  frame %2d: i=%.2f  level %d  misses %d (mand %d) aborts %d  ->  %-12v level %d\n",
			f, intensity, lv, d.Misses, d.MandatoryMisses, d.Aborted, decision.Cause, decision.To)
	}
	final := modes[ctl.Level()]
	fmt.Printf("\nsettled at level %d (quality %.0f%%), locked out: %v\n",
		final.Level, 100*final.Quality, ctl.LockedOut())
	fmt.Println("(escalation is immediate; re-admission needs a sustained clean streak,")
	fmt.Println(" and each failed probe backs the requirement off further)")
}
