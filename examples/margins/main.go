// Robustness margins: how much WCET estimation error can a deadline
// distribution absorb before it breaks?
//
// The walkthrough measures three things on one workload family:
//
//  1. the breakdown factor — the critical uniform scaling of all
//     execution times at which each metric's assignment first becomes
//     unschedulable (bisection over injected executions);
//  2. success ratios when the true WCETs deviate from the estimates
//     under parametric error models (multiplicative noise, per-class
//     bias, heavy-tail overruns);
//  3. the adaptive re-slicing feedback loop — observed overruns fed
//     back into the slicer until the corrected assignment survives.
//
// `go run ./cmd/sweep -study margins` runs the full paired study, with
// -checkpoint/-resume for long sweeps.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultWorkloadConfig(3)
	cfg.Seed = 7
	cfg.OLR = 0.55

	w, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Breakdown factor per metric on this one workload: the margin
	// each deadline distribution leaves against uniform slowdown.
	fmt.Println("breakdown factor per metric (critical uniform WCET scale):")
	metrics := append(repro.Metrics(), repro.AdaptR())
	for _, metric := range metrics {
		est, err := repro.Estimates(w.Graph, w.Platform, repro.WCETAvg)
		if err != nil {
			log.Fatal(err)
		}
		asg, err := repro.Distribute(w.Graph, est, w.Platform.M(), metric, repro.CalibratedParams())
		if err != nil {
			log.Fatal(err)
		}
		s, err := repro.Dispatch(w.Graph, w.Platform, asg)
		if err != nil {
			log.Fatal(err)
		}
		b, err := repro.BreakdownFactor(w.Graph, w.Platform, asg, s, repro.BreakdownOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s nominal=%v  factor=%.3f  unbounded=%v\n",
			metric.Name(), b.SurvivesNominal, b.Factor, b.Unbounded)
	}

	// 2. Estimation-error sweep over a small sample: plan with the
	// estimates, execute under perturbed truth.
	fmt.Println("\nsuccess over 64 workloads when true WCETs deviate from estimates:")
	for _, kind := range []repro.WCETErrorKind{repro.WCETErrMultiplicative, repro.WCETErrClassBias, repro.WCETErrHeavyTail} {
		for _, level := range []float64{0, 0.25, 0.5} {
			pt := repro.MarginStudy(repro.MarginConfig{
				Gen: cfg, Metric: repro.AdaptL(), Params: repro.CalibratedParams(),
				WCET: repro.WCETAvg, NumGraphs: 64, MasterSeed: 1999,
				Model: repro.WCETErrorModel{Kind: kind, Level: level},
			})
			fmt.Printf("  %-4v lvl=%.2f  ADAPT-L %5.1f%%  (%d overruns observed)\n",
				kind, level, 100*pt.Success.Value(), pt.Overruns)
		}
	}

	// 3. Adaptive re-slicing: manufacture a harsh overrun scenario and
	// let the feedback loop correct the estimates it planned with.
	est, err := repro.Estimates(w.Graph, w.Platform, repro.WCETAvg)
	if err != nil {
		log.Fatal(err)
	}
	var span repro.Time
	for _, o := range w.Graph.Outputs() {
		if d := w.Graph.Task(o).ETEDeadline; d > span {
			span = d
		}
	}
	tr, err := repro.MaterializeFaults(repro.ScaledFaultPlan(0.75, 1999), w.Graph, w.Platform, span)
	if err != nil {
		log.Fatal(err)
	}
	rr, err := repro.ResliceLoop(w.Graph, w.Platform, est, repro.AdaptL(),
		repro.CalibratedParams(), tr, repro.ResliceOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nre-slicing under a harsh overrun trace: recovered=%v after %d feedback iterations\n",
		rr.Recovered, rr.Iterations)
	fmt.Printf("final execution: %d misses over %d tasks (over-constrained=%v)\n",
		rr.Final.Degradation.Misses, w.Graph.NumTasks(), rr.OverConstrained)
}
