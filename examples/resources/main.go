// Resources: the §7.3 future-work extension in action — tasks that
// contend for exclusive shared resources (a calibration table and a
// logging flash device) on top of processor contention.
//
// A data-acquisition application samples four channels in parallel;
// each channel's calibration stage needs the shared calibration table,
// and each channel's logging stage needs the flash device. The example
// shows (1) the dispatcher serializing resource holders even with idle
// processors, (2) the resource-aware ADAPT-R metric granting the
// serialized tasks more laxity than plain ADAPT-L, and (3) the exact
// branch-and-bound scheduler confirming when a miss is unavoidable.
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	resCalib = 0 // shared calibration table
	resFlash = 1 // logging flash device
)

func build(channels int, ete repro.Time) *repro.Graph {
	g := repro.NewGraph(1)
	c1 := func(v repro.Time) []repro.Time { return []repro.Time{v} }
	src := g.MustAddTask("trigger", c1(4), 0)
	sink := g.MustAddTask("commit", c1(4), 0)
	for ch := 0; ch < channels; ch++ {
		sample := g.MustAddTask(fmt.Sprintf("sample%d", ch), c1(8), 0)
		calib := g.MustAddTask(fmt.Sprintf("calib%d", ch), c1(10), 0)
		logw := g.MustAddTask(fmt.Sprintf("log%d", ch), c1(6), 0)
		calib.Resources = []int{resCalib}
		logw.Resources = []int{resFlash}
		g.MustAddArc(src.ID, sample.ID, 1)
		g.MustAddArc(sample.ID, calib.ID, 2)
		g.MustAddArc(calib.ID, logw.ID, 2)
		g.MustAddArc(logw.ID, sink.ID, 1)
	}
	sink.ETEDeadline = ete
	g.MustFreeze()
	return g
}

func main() {
	const channels = 4
	g := build(channels, 150)
	platform := repro.HomogeneousPlatform(4) // plenty of processors...
	est, err := repro.Estimates(g, platform, repro.WCETAvg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("application: %d tasks; calib stages share resource %d, log stages resource %d\n",
		g.NumTasks(), resCalib, resFlash)
	fmt.Printf("serial floor: %d calibrations × 10 = %d units on one table\n\n", channels, channels*10)

	// Four 10-unit calibrations serialize on the table, so the last one
	// finishes 30 units after its window "fairly" opens: the calib
	// windows need ≈30 units of laxity. Plain ADAPT-L cannot know that;
	// ADAPT-R with k_R = 0.6 grants each calib 1 + 0.6·3 ≈ 2.8× virtual
	// cost and the windows stretch accordingly.
	params := repro.CalibratedParams()
	params.KR = 0.6

	fmt.Println("metric    feasible  maxLate  calib laxities")
	for _, metric := range []repro.Metric{repro.AdaptL(), repro.AdaptR()} {
		asg, err := repro.Distribute(g, est, platform.M(), metric, params)
		if err != nil {
			log.Fatal(err)
		}
		s, err := repro.Dispatch(g, platform, asg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %-9v %7d  ", metric.Name(), s.Feasible, s.MaxLateness)
		for i := 0; i < g.NumTasks(); i++ {
			if len(g.Task(i).Resources) > 0 && g.Task(i).Resources[0] == resCalib {
				fmt.Printf("%d ", asg.Laxity(i, est))
			}
		}
		fmt.Println()
	}

	// Show the serialization in the ADAPT-R schedule.
	asg, err := repro.Distribute(g, est, platform.M(), repro.AdaptR(), params)
	if err != nil {
		log.Fatal(err)
	}
	s, err := repro.Dispatch(g, platform, asg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncalibration table holds (serialized even with 4 processors):")
	for i := 0; i < g.NumTasks(); i++ {
		if len(g.Task(i).Resources) > 0 && g.Task(i).Resources[0] == resCalib {
			pl := s.Placements[i]
			fmt.Printf("  %-8s proc %d  [%3d,%3d)\n", g.Task(i).Name, pl.Proc, pl.Start, pl.Finish)
		}
	}
	rep, err := repro.Replay(g, platform, asg, s, false)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay valid: %v\n\n", rep.Valid)

	// Tighten the deadline until no schedule exists at all: the serial
	// floor through the calibration table is physical. Three channels
	// keep the exact search small enough to be conclusive.
	small := build(3, 1) // deadlines overwritten below
	estS, err := repro.Estimates(small, platform, repro.WCETAvg)
	if err != nil {
		log.Fatal(err)
	}
	for _, ete := range []repro.Time{120, 80, 50} {
		tight := build(3, ete)
		asgT, err := repro.Distribute(tight, estS, platform.M(), repro.AdaptR(), params)
		if err != nil {
			log.Fatal(err)
		}
		d, err := repro.Dispatch(tight, platform, asgT)
		if err != nil {
			log.Fatal(err)
		}
		exact, err := repro.ExactSchedule(tight, platform, asgT, repro.ExactOptions{
			NodeBudget: 3_000_000, StopAtFeasible: true})
		if err != nil {
			log.Fatal(err)
		}
		verdict := "windows infeasible for ANY non-preemptive schedule"
		if exact.Schedule != nil && exact.Schedule.Feasible {
			verdict = "exact scheduler finds a feasible order"
		} else if !exact.Optimal {
			verdict = "search budget exhausted (inconclusive)"
		}
		fmt.Printf("deadline %3d: dispatcher feasible=%v; %s\n", ete, d.Feasible, verdict)
	}
}
