// Fault tolerance: assign deadlines with ADAPT-L, schedule, then
// execute the schedule under increasingly harsh injected faults — WCET
// overruns, a processor loss, bus jitter — and watch the degradation.
// The walkthrough then switches on the online slack-reclamation
// recovery policy and compares.
//
// The paper argues its metric is *robust*: good deadline distributions
// keep working when the system misbehaves. This example quantifies that
// claim on one workload; `go run ./cmd/sweep -study faults` runs the
// full paired study.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	cfg := repro.DefaultWorkloadConfig(3)
	cfg.Seed = 7
	cfg.OLR = 0.55

	w, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := repro.DefaultPipeline().Run(w.Graph, w.Platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d tasks on %s, nominal schedule feasible=%v\n",
		w.Graph.NumTasks(), w.Platform, res.Schedule.Feasible)

	// The failure-instant horizon: the latest end-to-end deadline.
	var span repro.Time
	for _, o := range w.Graph.Outputs() {
		if d := w.Graph.Task(o).ETEDeadline; d > span {
			span = d
		}
	}

	fmt.Println("\nintensity  misses  miss%  ete  maxlate  first  overruns aborts migr")
	for _, intensity := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		plan := repro.ScaledFaultPlan(intensity, 1999)
		tr, err := repro.MaterializeFaults(plan, w.Graph, w.Platform, span)
		if err != nil {
			log.Fatal(err)
		}
		ir, err := repro.InjectFaults(w.Graph, w.Platform, res.Assignment, res.Schedule, tr, false)
		if err != nil {
			log.Fatal(err)
		}
		d := ir.Degradation
		fmt.Printf("  i=%.2f   %5d  %4.1f%%  %3d  %7d  %5d  %8d %6d %4d\n",
			intensity, d.Misses, 100*d.MissRatio(), d.ETEMisses,
			d.MaxLateness, d.FirstMiss, d.Overruns, d.Aborted, d.Migrations)
	}

	// Same harshest scenario, now with online slack reclamation: when a
	// task overruns its window, the remaining end-to-end slack is
	// redistributed over its pending descendants using the metric's
	// virtual costs, re-prioritizing the dispatcher. Misses are still
	// judged against the original windows — recovery never moves the
	// goalposts.
	plan := repro.ScaledFaultPlan(1, 1999)
	tr, err := repro.MaterializeFaults(plan, w.Graph, w.Platform, span)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := repro.InjectFaults(w.Graph, w.Platform, res.Assignment, res.Schedule, tr, false)
	if err != nil {
		log.Fatal(err)
	}
	rec, err := repro.InjectFaults(w.Graph, w.Platform, res.Assignment, res.Schedule, tr, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat full intensity, without recovery: %d misses (%d end-to-end), mean lateness %.1f\n",
		plain.Degradation.Misses, plain.Degradation.ETEMisses, plain.Degradation.MeanLateness)
	fmt.Printf("with slack reclamation:              %d misses (%d end-to-end), mean lateness %.1f, %d reclamations\n",
		rec.Degradation.Misses, rec.Degradation.ETEMisses, rec.Degradation.MeanLateness,
		rec.Degradation.Reclamations)
	fmt.Printf("both executions verified: %v / %v\n", plain.Valid, rec.Valid)
}
