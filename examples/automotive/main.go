// Automotive: a periodic engine-plus-brake control application across
// two ECU classes, demonstrating the planning-cycle expansion of §3.3.
//
// The engine control pipeline runs every 40 time units, the slower
// brake/stability pipeline every 80, so the planning cycle is 80 and the
// engine pipeline is invoked twice per cycle. The example expands the
// periodic graph, distributes every invocation's deadline with ADAPT-L,
// schedules the cycle, and verifies the result under both the nominal
// and the serialized bus model.
package main

import (
	"fmt"
	"log"

	"repro"
)

func wcet(fast, slow repro.Time) []repro.Time { return []repro.Time{fast, slow} }

func main() {
	g := repro.NewGraph(2)

	// Engine pipeline (period 40): crank sensing → injection calc →
	// injector actuation.
	crank := g.MustAddTask("crank-sense", wcet(4, 6), 0)
	inj := g.MustAddTask("injection-calc", wcet(9, 14), 0)
	act := g.MustAddTask("injector", wcet(4, 6), 0)
	g.MustAddArc(crank.ID, inj.ID, 2)
	g.MustAddArc(inj.ID, act.ID, 1)
	for _, t := range []*repro.Task{crank, inj, act} {
		t.Period = 40
	}
	act.ETEDeadline = 36

	// Brake/stability pipeline (period 80): wheel speeds → slip model →
	// brake modulation.
	wheel := g.MustAddTask("wheel-speeds", wcet(5, 8), 0)
	slip := g.MustAddTask("slip-model", wcet(12, 18), 0)
	brake := g.MustAddTask("brake-mod", wcet(5, 8), 0)
	g.MustAddArc(wheel.ID, slip.ID, 3)
	g.MustAddArc(slip.ID, brake.ID, 2)
	for _, t := range []*repro.Task{wheel, slip, brake} {
		t.Period = 80
	}
	brake.ETEDeadline = 70
	g.MustFreeze()

	e, err := repro.ExpandPeriodic(g)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("planning cycle: L=%d, span=%d, %d invocations from %d tasks\n",
		e.Cycle, e.Span, e.Graph.NumTasks(), g.NumTasks())

	// Two ECUs: one fast, one slow, CAN-like shared bus.
	platform, err := repro.NewPlatform(
		[]repro.Class{{Name: "ecu-fast"}, {Name: "ecu-slow"}}, []int{0, 1}, 1)
	if err != nil {
		log.Fatal(err)
	}

	pipe := repro.DefaultPipeline()
	res, err := pipe.Run(e.Graph, platform)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ninvocation        window           proc  runs")
	for j := 0; j < e.Graph.NumTasks(); j++ {
		pl := res.Schedule.Placements[j]
		fmt.Printf("  %-14s  [%3d,%3d)        %d    [%3d,%3d)\n",
			e.Graph.Task(j).Name, res.Assignment.Arrival[j], res.Assignment.AbsDeadline[j],
			pl.Proc, pl.Start, pl.Finish)
	}
	if !res.Schedule.Feasible {
		log.Fatalf("cycle infeasible: missed %v", res.Schedule.Missed)
	}
	fmt.Printf("\ncycle FEASIBLE: makespan %d of %d-unit cycle, max lateness %d\n",
		res.Schedule.Makespan, e.Cycle, res.Schedule.MaxLateness)

	// The paper's nominal bus charges each message independently; a CAN
	// bus is exclusive. Check the schedule both ways.
	for _, serialized := range []bool{false, true} {
		rep, err := repro.Replay(e.Graph, platform, res.Assignment, res.Schedule, serialized)
		if err != nil {
			log.Fatal(err)
		}
		model := "nominal"
		if serialized {
			model = "serialized"
		}
		fmt.Printf("%s bus: valid=%v (bus busy %d units)\n", model, rep.Valid, rep.BusBusy)
		for _, v := range rep.Violations {
			fmt.Println("   -", v)
		}
	}

	// Invocation windows of the same task never overlap (dᵢ ≤ Tᵢ): the
	// slicing guarantee that makes the cycle repeatable.
	for id := 0; id < g.NumTasks(); id++ {
		n1, n2 := e.NodeOf(id, 1), e.NodeOf(id, 2)
		if n2 < 0 {
			continue
		}
		fmt.Printf("%s: invocation windows [%d,%d) then [%d,%d) — disjoint: %v\n",
			g.Task(id).Name,
			res.Assignment.Arrival[n1], res.Assignment.AbsDeadline[n1],
			res.Assignment.Arrival[n2], res.Assignment.AbsDeadline[n2],
			res.Assignment.AbsDeadline[n1] <= res.Assignment.Arrival[n2])
	}
}
