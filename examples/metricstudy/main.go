// Metricstudy: dissect how the four critical-path metrics divide the
// same end-to-end deadline differently on one contended workload, and
// why that changes the scheduling outcome.
//
// The program prints, for each metric, the per-task laxity assigned to
// the most contended tasks (largest parallel sets) versus the least
// contended ones, the success of the dispatch, and an ASCII plot of the
// per-metric success ratio over a small seed sweep.
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/textplot"
)

func main() {
	cfg := repro.DefaultWorkloadConfig(3)
	cfg.Seed = repro.SubSeed(7, 3)
	cfg.OLR = 0.5 // tight enough that distribution quality decides
	w, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	g := w.Graph
	est, err := repro.Estimates(g, w.Platform, repro.WCETAvg)
	if err != nil {
		log.Fatal(err)
	}

	// Rank tasks by parallel-set size: |Ψ| measures how many tasks can
	// contend with each one (eq. 8).
	ids := make([]int, g.NumTasks())
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		return g.ParallelSetSize(ids[a]) > g.ParallelSetSize(ids[b])
	})
	top, bottom := ids[:5], ids[len(ids)-5:]

	fmt.Printf("workload: %d tasks, depth %d, ξ=%.2f (avg parallelism), m=%d\n\n",
		g.NumTasks(), g.Depth(), g.AvgParallelism(est), w.Platform.M())

	fmt.Println("metric    feasible  missed  meanLax(top-5 |Ψ|)  meanLax(bottom-5 |Ψ|)")
	for _, metric := range repro.Metrics() {
		asg, err := repro.Distribute(g, est, w.Platform.M(), metric, repro.CalibratedParams())
		if err != nil {
			log.Fatal(err)
		}
		s, err := repro.Dispatch(g, w.Platform, asg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-9s %-9v %6d  %18.1f  %21.1f\n",
			metric.Name(), s.Feasible, len(s.Missed),
			meanLaxity(asg, est, top), meanLaxity(asg, est, bottom))
	}

	// Sweep 60 seeds and plot the per-metric success ratio.
	const seeds = 60
	var series []textplot.Series
	xLabels := []string{"0.45", "0.50", "0.55", "0.60"}
	for _, metric := range repro.Metrics() {
		var vals []float64
		for _, olr := range []float64{0.45, 0.5, 0.55, 0.6} {
			succ := 0
			for i := 0; i < seeds; i++ {
				c := repro.DefaultWorkloadConfig(3)
				c.Seed = repro.SubSeed(99, i)
				c.OLR = olr
				ww, err := repro.Generate(c)
				if err != nil {
					log.Fatal(err)
				}
				e2, err := repro.Estimates(ww.Graph, ww.Platform, repro.WCETAvg)
				if err != nil {
					log.Fatal(err)
				}
				asg, err := repro.Distribute(ww.Graph, e2, ww.Platform.M(), metric, repro.CalibratedParams())
				if err != nil {
					log.Fatal(err)
				}
				s, err := repro.Dispatch(ww.Graph, ww.Platform, asg)
				if err != nil {
					log.Fatal(err)
				}
				if s.Feasible {
					succ++
				}
			}
			vals = append(vals, float64(succ)/seeds)
		}
		series = append(series, textplot.Series{Name: metric.Name(), Values: vals})
	}
	fmt.Println()
	fmt.Print(textplot.Plot(
		fmt.Sprintf("success ratio vs OLR (m=3, %d workloads/point)", seeds),
		xLabels, series, textplot.Options{Height: 12, Min: 0, Max: 1, Percent: true}))
}

func meanLaxity(asg *repro.Assignment, est []repro.Time, ids []int) float64 {
	var sum float64
	for _, id := range ids {
		sum += float64(asg.Laxity(id, est))
	}
	return sum / float64(len(ids))
}
