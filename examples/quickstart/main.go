// Quickstart: generate one random workload from the paper's setup, run
// the full pipeline — WCET estimation, slicing deadline distribution
// with the ADAPT-L metric, time-driven EDF dispatch, replay
// verification — and print what happened.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A three-processor heterogeneous system with the paper's workload
	// parameters (40-60 tasks, depth 8-12, ETD 25%, CCR 0.1).
	cfg := repro.DefaultWorkloadConfig(3)
	cfg.Seed = 42
	cfg.OLR = 0.55 // deadline tightness: the calibrated operating point

	w, err := repro.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %d tasks, %d arcs, depth %d on %s\n",
		w.Graph.NumTasks(), w.Graph.NumArcs(), w.Graph.Depth(), w.Platform)

	res, err := repro.DefaultPipeline().Run(w.Graph, w.Platform)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("deadline distribution: metric %s, %d critical-path chains\n",
		res.Assignment.MetricName, len(res.Assignment.Chains))
	fmt.Printf("first critical path: %v\n", res.Assignment.Chains[0])
	fmt.Printf("min laxity over all tasks: %d time units\n",
		res.Assignment.MinLaxity(res.Estimates))

	if res.Schedule.Feasible {
		fmt.Printf("schedule: FEASIBLE, makespan %d, max lateness %d\n",
			res.Schedule.Makespan, res.Schedule.MaxLateness)
	} else {
		fmt.Printf("schedule: INFEASIBLE, %d tasks missed their deadline\n",
			len(res.Schedule.Missed))
	}
	fmt.Printf("replay: valid=%v, processor utilization %.1f%%, bus busy %d units\n",
		res.Report.Valid, 100*res.Report.Utilization(), res.Report.BusBusy)
}
