// Exploration: dissect one hard workload with the full analysis
// toolkit. The program finds a workload that ADAPT-L fails, then asks,
// in order:
//
//  1. Explain — how was the deadline distributed? (round-by-round)
//  2. CheckFeasibility — are the windows provably unschedulable?
//  3. ExactSchedule — could ANY non-preemptive schedule meet them?
//  4. DispatchPreemptive — would preemption have saved it?
//  5. AnnealVirtualCosts — could a better virtual-cost vector fix it?
//
// Together these separate the three failure sources entangled in a
// success-ratio number: the metric, the windows, and the dispatcher.
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
)

func main() {
	// Hunt for a small workload where ADAPT-L fails.
	var (
		w   *repro.Workload
		est []repro.Time
		asg *repro.Assignment
	)
	pipe := repro.DefaultPipeline()
	for idx := 0; ; idx++ {
		cfg := repro.DefaultWorkloadConfig(2)
		cfg.Seed = repro.SubSeed(123, idx)
		cfg.OLR = 0.6
		cfg.MinTasks, cfg.MaxTasks = 12, 16
		cfg.MinDepth, cfg.MaxDepth = 3, 5
		cand, err := repro.Generate(cfg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := pipe.Run(cand.Graph, cand.Platform)
		if err != nil {
			log.Fatal(err)
		}
		if !res.Schedule.Feasible {
			w, est, asg = cand, res.Estimates, res.Assignment
			fmt.Printf("workload %d: %d tasks on %s — ADAPT-L misses %d deadline(s)\n\n",
				idx, cand.Graph.NumTasks(), cand.Platform, len(res.Schedule.Missed))
			break
		}
	}

	// 1. The distribution narrative.
	if err := repro.Explain(os.Stdout, w.Graph, est, asg); err != nil {
		log.Fatal(err)
	}

	// 2. Necessary conditions: is the assignment provably dead?
	violations, err := repro.CheckFeasibility(w.Graph, w.Platform, asg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnecessary feasibility conditions: %d violation(s)\n", len(violations))
	for _, v := range violations {
		fmt.Println("  -", v)
	}

	// 3. Exact search over non-preemptive schedules.
	exact, err := repro.ExactSchedule(w.Graph, w.Platform, asg,
		repro.ExactOptions{NodeBudget: 2_000_000, StopAtFeasible: true})
	if err != nil {
		log.Fatal(err)
	}
	switch {
	case exact.Schedule != nil && exact.Schedule.Feasible:
		fmt.Printf("exact search (%d nodes): a feasible non-preemptive schedule EXISTS — the dispatcher lost it\n", exact.Nodes)
	case exact.Optimal:
		fmt.Printf("exact search (%d nodes): NO non-preemptive schedule meets these windows — the metric lost it\n", exact.Nodes)
	default:
		fmt.Printf("exact search: budget exhausted after %d nodes (inconclusive)\n", exact.Nodes)
	}

	// 4. Would preemption help?
	pre, err := repro.DispatchPreemptive(w.Graph, w.Platform, asg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preemptive EDF with migration: feasible=%v (%d preemptions, %d migrations)\n",
		pre.Feasible, pre.Preemptions, pre.Migrations)

	// 5. Could better virtual costs fix it within the slicing family?
	ann, err := repro.AnnealVirtualCosts(w.Graph, w.Platform, est, repro.CalibratedParams(),
		repro.AnnealOptions{Iterations: 400, Seed: 9})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("annealed virtual costs (%d evaluations): feasible=%v (objective %.0f → %.0f)\n",
		ann.Evaluations, ann.Schedule.Feasible, ann.StartCost, ann.BestCost)
	if ann.Schedule.Feasible {
		fmt.Println("\nverdict: the windows were fixable within the virtual-cost family —")
		fmt.Println("ADAPT-L's closed-form contention model left headroom on this workload.")
	}
}
