// Avionics: a flight-control application of the kind the paper's
// introduction motivates — sensors feeding a fusion stage, redundant
// control laws, and actuators — on a heterogeneous platform with
// I/O controllers, DSPs, and general-purpose CPUs.
//
// Locality constraints are expressed through class eligibility: sensor
// and actuator tasks only run on I/O controllers (their physical
// proximity requirement, §1), signal processing only on DSPs or CPUs.
// The example distributes the 135-unit end-to-end deadline with every
// metric and shows how the adaptive metrics shift laxity toward the
// contended control laws.
package main

import (
	"fmt"
	"log"

	"repro"
)

const (
	clsIO  = 0 // I/O controller
	clsDSP = 1 // signal processor
	clsCPU = 2 // general-purpose CPU
)

// wcet builds a 3-class WCET vector; repro.Unset marks ineligibility.
func wcet(io, dsp, cpu repro.Time) []repro.Time { return []repro.Time{io, dsp, cpu} }

func buildApplication() *repro.Graph {
	g := repro.NewGraph(3)

	// Sensor front end: three redundant attitude/airspeed/altitude
	// sensors, I/O bound.
	gyro := g.MustAddTask("gyro", wcet(6, repro.Unset, repro.Unset), 0)
	pitot := g.MustAddTask("pitot", wcet(6, repro.Unset, repro.Unset), 0)
	baro := g.MustAddTask("baro", wcet(4, repro.Unset, repro.Unset), 0)

	// Filtering and fusion: DSP-friendly, slower on a CPU.
	fGyro := g.MustAddTask("filter-gyro", wcet(repro.Unset, 10, 18), 0)
	fAir := g.MustAddTask("filter-air", wcet(repro.Unset, 9, 16), 0)
	fusion := g.MustAddTask("state-fusion", wcet(repro.Unset, 14, 22), 0)

	// Redundant control laws, CPU or DSP.
	lawA := g.MustAddTask("control-law-A", wcet(repro.Unset, 20, 16), 0)
	lawB := g.MustAddTask("control-law-B", wcet(repro.Unset, 20, 16), 0)
	vote := g.MustAddTask("voter", wcet(repro.Unset, 6, 5), 0)

	// Actuation, back on the I/O controllers.
	elevator := g.MustAddTask("elevator", wcet(7, repro.Unset, repro.Unset), 0)
	aileron := g.MustAddTask("aileron", wcet(7, repro.Unset, repro.Unset), 0)

	g.MustAddArc(gyro.ID, fGyro.ID, 3)
	g.MustAddArc(pitot.ID, fAir.ID, 3)
	g.MustAddArc(baro.ID, fAir.ID, 2)
	g.MustAddArc(fGyro.ID, fusion.ID, 4)
	g.MustAddArc(fAir.ID, fusion.ID, 4)
	g.MustAddArc(fusion.ID, lawA.ID, 5)
	g.MustAddArc(fusion.ID, lawB.ID, 5)
	g.MustAddArc(lawA.ID, vote.ID, 2)
	g.MustAddArc(lawB.ID, vote.ID, 2)
	g.MustAddArc(vote.ID, elevator.ID, 1)
	g.MustAddArc(vote.ID, aileron.ID, 1)

	// 135-unit end-to-end deadline from sensor sampling to surface
	// deflection (the three sensors serialize on the single I/O
	// controller, so the path needs headroom beyond its raw length).
	elevator.ETEDeadline = 135
	aileron.ETEDeadline = 135
	g.MustFreeze()
	return g
}

func main() {
	g := buildApplication()

	// One I/O controller, one DSP, two CPUs, one-unit-per-item bus.
	platform, err := repro.NewPlatform(
		[]repro.Class{{Name: "io"}, {Name: "dsp"}, {Name: "cpu"}},
		[]int{clsIO, clsDSP, clsCPU, clsCPU}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("application: %d tasks, %d arcs, depth %d\n", g.NumTasks(), g.NumArcs(), g.Depth())
	fmt.Printf("platform: %s\n\n", platform)

	est, err := repro.Estimates(g, platform, repro.WCETAvg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("metric    feasible  makespan  maxLate  law-A window  law-A laxity")
	for _, metric := range repro.Metrics() {
		asg, err := repro.Distribute(g, est, platform.M(), metric, repro.CalibratedParams())
		if err != nil {
			log.Fatal(err)
		}
		s, err := repro.Dispatch(g, platform, asg)
		if err != nil {
			log.Fatal(err)
		}
		lawA := 6 // ID of control-law-A (7th task added)
		fmt.Printf("%-9s %-9v %8d %8d  [%3d,%3d)     %6d\n",
			metric.Name(), s.Feasible, s.Makespan, s.MaxLateness,
			asg.Arrival[lawA], asg.AbsDeadline[lawA], asg.Laxity(lawA, est))
	}

	// Show the full ADAPT-L result with replay verification.
	res, err := repro.DefaultPipeline().Run(g, platform)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nADAPT-L placements:")
	for i := 0; i < g.NumTasks(); i++ {
		pl := res.Schedule.Placements[i]
		fmt.Printf("  %-14s window [%3d,%3d)  proc %d  runs [%3d,%3d)\n",
			g.Task(i).Name, res.Assignment.Arrival[i], res.Assignment.AbsDeadline[i],
			pl.Proc, pl.Start, pl.Finish)
	}
	fmt.Printf("replay valid: %v, deadline misses: %v\n", res.Report.Valid, res.Report.DeadlineMisses)
}
